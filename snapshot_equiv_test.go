package refill

// Equivalence harness for the columnar snapshot layer: analysis over a
// memory-mapped snapshot must be byte-identical — flows, reports, and
// re-serializations — to analysis over the in-memory collection the snapshot
// was written from, and a session resumed from a checkpoint must drain into
// exactly what an uninterrupted session (and batch analysis) produces, for a
// crash at every checkpoint epoch. CI runs this file under -race and again
// with the refill_nommap build tag, so both the mmap and the portable
// read-into-aligned-buffer open paths carry the same guarantee.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// snapshotPath writes logs to a snapshot file under t.TempDir.
func snapshotPath(t *testing.T, logs *Collection) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.snap")
	if err := WriteSnapshot(path, logs); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSnapshotAnalyzeEquivalence pins the zero-copy read path: every
// analysis mode over the mapped collection must equal the same mode over the
// original, and every serialization of the mapped collection must be
// byte-identical to serializing the original.
func TestSnapshotAnalyzeEquivalence(t *testing.T) {
	c := equivCampaign(t)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	dayLen := int64(sim.Day)
	days := int((end + dayLen - 1) / dayLen)
	an, err := NewAnalyzer(AnalyzerOptions{},
		WithSink(sink), WithWindow(0, end), WithDailyBins(dayLen, days))
	if err != nil {
		t.Fatal(err)
	}
	want := an.Analyze(logs)
	if want.Report.Total() == 0 || len(want.Report.Outages) == 0 {
		t.Fatal("degenerate campaign: need losses and outages to prove anything")
	}

	path := snapshotPath(t, logs)
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if err := snap.Verify(); err != nil {
		t.Fatalf("fresh snapshot fails Verify: %v", err)
	}
	mapped := snap.Collection()

	t.Run("analyze", func(t *testing.T) {
		got := an.Analyze(mapped)
		if !reflect.DeepEqual(want.Result.Flows, got.Result.Flows) {
			t.Error("flows over the mapped collection diverged")
		}
		if !reflect.DeepEqual(want.Result.Operational, got.Result.Operational) {
			t.Error("operational events diverged")
		}
		checkSameReport(t, want.Report, got.Report, dayLen, days)
	})
	t.Run("analyze-stream", func(t *testing.T) {
		got := an.AnalyzeStream(mapped)
		if !reflect.DeepEqual(want.Result.Flows, got.Result.Flows) {
			t.Error("streamed flows over the mapped collection diverged")
		}
		checkSameReport(t, want.Report, got.Report, dayLen, days)
	})
	t.Run("serializations", func(t *testing.T) {
		var wantBin, gotBin bytes.Buffer
		if err := WriteLogsBinary(&wantBin, logs); err != nil {
			t.Fatal(err)
		}
		if err := WriteLogsBinary(&gotBin, mapped); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBin.Bytes(), gotBin.Bytes()) {
			t.Error("binary serialization of the mapped collection diverged")
		}
		var wantText, gotText bytes.Buffer
		if err := WriteLogs(&wantText, logs); err != nil {
			t.Fatal(err)
		}
		if err := WriteLogs(&gotText, mapped); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantText.Bytes(), gotText.Bytes()) {
			t.Error("text serialization of the mapped collection diverged")
		}
		// Re-snapshotting the mapped collection reproduces the file bit for
		// bit: the format round-trips through itself with no drift.
		again := filepath.Join(t.TempDir(), "again.snap")
		if err := WriteSnapshot(again, mapped); err != nil {
			t.Fatal(err)
		}
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		re, err := os.ReadFile(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(orig, re) {
			t.Error("re-snapshot of the mapped collection is not byte-identical")
		}
	})
}

// TestSnapshotCheckpointResumeEquivalence crashes a session at EVERY
// checkpoint epoch of a fragment schedule and requires the resumed session's
// drained report — raw outcomes, every aggregate read, and the rendered
// breakdown — to match both the uninterrupted session and batch analysis.
func TestSnapshotCheckpointResumeEquivalence(t *testing.T) {
	c := equivCampaign(t)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	dayLen := int64(sim.Day)
	days := int((end + dayLen - 1) / dayLen)
	horizon := maxPacketSpread(logs)
	an, err := NewAnalyzer(AnalyzerOptions{},
		WithSink(sink), WithWindow(0, end), WithDailyBins(dayLen, days))
	if err != nil {
		t.Fatal(err)
	}
	want := an.Analyze(logs)
	nodes := logs.Nodes()
	sc := SessionConfig{Horizon: horizon}

	newSess := func(t *testing.T) *Session {
		t.Helper()
		sess, err := an.NewSession(sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			sess.Register(n)
		}
		return sess
	}
	// round r feeds every node's r-th log slice, then advances.
	const rounds = 4
	feed := func(t *testing.T, sess *Session, from, to int) {
		t.Helper()
		for r := from; r < to; r++ {
			for _, n := range nodes {
				evs := logs.Log(n).Events()
				lo, hi := len(evs)*r/rounds, len(evs)*(r+1)/rounds
				if err := sess.Append(n, evs[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sess.Advance(end); err != nil {
				t.Fatal(err)
			}
		}
	}

	ref := newSess(t)
	feed(t, ref, 0, rounds)
	_, refRep := ref.Drain()
	checkSameReport(t, want.Report, refRep, dayLen, days)
	refText := RenderBreakdown(refRep)

	for epoch := 0; epoch < rounds; epoch++ {
		path := filepath.Join(t.TempDir(), "epoch.ckpt")
		crashed := newSess(t)
		feed(t, crashed, 0, epoch)
		if err := crashed.WriteCheckpoint(path); err != nil {
			t.Fatalf("epoch %d: checkpoint: %v", epoch, err)
		}
		// The crash: the original session is abandoned unread.
		resumed, err := an.ResumeSession(sc, path)
		if err != nil {
			t.Fatalf("epoch %d: resume: %v", epoch, err)
		}
		feed(t, resumed, epoch, rounds)
		_, rep := resumed.Drain()
		if !reflect.DeepEqual(refRep.Outcomes, rep.Outcomes) {
			t.Errorf("epoch %d: resumed outcomes diverged from the uninterrupted session", epoch)
		}
		checkSameReport(t, want.Report, rep, dayLen, days)
		if got := RenderBreakdown(rep); got != refText {
			t.Errorf("epoch %d: rendered breakdown diverged:\n got: %s\nwant: %s", epoch, got, refText)
		}
	}
}

// TestSnapshotSessionFromMappedCollection closes the loop between the two
// halves of this file: fragments served out of a mapped snapshot (the
// retriever re-reading its archive) must drive a session to the same drained
// report as fragments served from the in-memory collection.
func TestSnapshotSessionFromMappedCollection(t *testing.T) {
	c := equivCampaign(t)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	horizon := maxPacketSpread(logs)
	an, err := NewAnalyzer(AnalyzerOptions{}, WithSink(sink), WithWindow(0, end))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(snapshotPath(t, logs))
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	mapped := snap.Collection()

	sess, err := an.NewSession(sc(horizon))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range mapped.Nodes() {
		sess.Register(n)
	}
	for _, n := range mapped.Nodes() {
		if err := sess.Append(n, mapped.Log(n).Events()); err != nil {
			t.Fatal(err)
		}
	}
	_, rep := sess.Drain()
	want := an.Analyze(logs)
	if !reflect.DeepEqual(want.Report.Outcomes, rep.Outcomes) {
		t.Error("session fed from the mapped collection diverged from batch")
	}
}

func sc(horizon int64) SessionConfig { return SessionConfig{Horizon: horizon} }

// TestSnapshotOutOfCoreEquivalence pins the out-of-core path: windowed
// reconstruction straight off the mapping (Analyzer.AnalyzeSnapshot) must be
// byte-identical to batch analysis of the same collection — across window
// sizes small enough to force many residency windows, with and without an
// explicit horizon, and with flows discarded. Runs under -race and under the
// refill_nommap tag like the rest of this file, so the madvise-hinted mmap
// walk and the portable buffer walk carry the same guarantee.
func TestSnapshotOutOfCoreEquivalence(t *testing.T) {
	c := equivCampaign(t)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	dayLen := int64(sim.Day)
	days := int((end + dayLen - 1) / dayLen)
	an, err := NewAnalyzer(AnalyzerOptions{},
		WithSink(sink), WithWindow(0, end), WithDailyBins(dayLen, days))
	if err != nil {
		t.Fatal(err)
	}
	want := an.Analyze(logs)
	if want.Report.Total() == 0 || len(want.Report.Outages) == 0 {
		t.Fatal("degenerate campaign: need losses and outages to prove anything")
	}

	snap, err := OpenSnapshot(snapshotPath(t, logs))
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	horizon := maxPacketSpread(logs)
	cases := []struct {
		name string
		opts SnapshotOptions
	}{
		{"default-window", SnapshotOptions{}},
		{"tiny-windows", SnapshotOptions{WindowRows: 64}},
		{"odd-windows", SnapshotOptions{WindowRows: 257}},
		{"explicit-horizon", SnapshotOptions{WindowRows: 311, Horizon: horizon}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := an.AnalyzeSnapshot(snap, tc.opts)
			if !reflect.DeepEqual(want.Result.Flows, got.Result.Flows) {
				t.Error("out-of-core flows diverged from batch")
			}
			if !reflect.DeepEqual(want.Result.Operational, got.Result.Operational) {
				t.Error("out-of-core operational events diverged from batch")
			}
			checkSameReport(t, want.Report, got.Report, dayLen, days)
		})
	}
	t.Run("discard-flows", func(t *testing.T) {
		got := an.AnalyzeSnapshot(snap, SnapshotOptions{WindowRows: 128, DiscardFlows: true})
		if got.Result.Flows != nil {
			t.Errorf("DiscardFlows retained %d flows", len(got.Result.Flows))
		}
		if !reflect.DeepEqual(want.Result.Operational, got.Result.Operational) {
			t.Error("out-of-core operational events diverged from batch")
		}
		checkSameReport(t, want.Report, got.Report, dayLen, days)
	})
}
