package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	refill "repro"
)

// campaignPieces splits a campaign's logs into one single-node collection
// per node (the fragment a retriever would push) and computes the maximum
// within-packet timestamp spread — the horizon a deployment would derive
// from its clock-skew and packet-lifetime bounds.
func campaignPieces(t *testing.T, logs *refill.Collection) (map[refill.NodeID]*refill.Collection, int64) {
	t.Helper()
	frags := make(map[refill.NodeID]*refill.Collection)
	type span struct{ min, max int64 }
	spans := make(map[refill.PacketID]span)
	for _, n := range logs.Nodes() {
		frag := refill.NewCollection()
		for _, e := range logs.Log(n).Events() {
			frag.Add(e)
			if !e.Type.PacketScoped() {
				continue
			}
			s, ok := spans[e.Packet]
			if !ok {
				s = span{min: e.Time, max: e.Time}
			}
			if e.Time < s.min {
				s.min = e.Time
			}
			if e.Time > s.max {
				s.max = e.Time
			}
			spans[e.Packet] = s
		}
		frags[n] = frag
	}
	horizon := int64(0)
	//refill:allow maprange — max reduction; order-independent
	for _, s := range spans {
		if d := s.max - s.min; d > horizon {
			horizon = d
		}
	}
	return frags, horizon
}

func postLogs(t *testing.T, client *http.Client, url string, frag *refill.Collection, binary bool) {
	t.Helper()
	var buf bytes.Buffer
	ct := "text/plain"
	if binary {
		ct = "application/octet-stream"
		if err := refill.WriteLogsBinary(&buf, frag); err != nil {
			t.Fatal(err)
		}
	} else if err := refill.WriteLogs(&buf, frag); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/append", ct, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("append: %s: %s", resp.Status, body)
	}
}

func TestServeIngestMatchesBatch(t *testing.T) {
	camp, err := refill.RunCampaign(refill.TinyCampaign(11))
	if err != nil {
		t.Fatal(err)
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{},
		refill.WithSink(camp.Sink),
		refill.WithWindow(0, int64(camp.Duration)))
	if err != nil {
		t.Fatal(err)
	}
	want := an.Analyze(camp.Logs)

	frags, horizon := campaignPieces(t, camp.Logs)
	sess, err := an.NewSession(refill.SessionConfig{Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(newHandler(sess, ""))
	srv.EnableHTTP2 = true
	srv.StartTLS()
	defer srv.Close()
	client := srv.Client()

	// Register every log source first: until a node has pushed something
	// the watermark holds at the floor on its account, so the aggressive
	// advances below cannot finalize packets whose rows are still unseen.
	nodes := camp.Logs.Nodes()
	for _, n := range nodes {
		resp, err := client.Post(fmt.Sprintf("%s/v1/register?node=%v", srv.URL, n), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %v: %s", n, resp.Status)
		}
	}

	// Push each node's log as several fragments, round-robin across nodes
	// and alternating codecs, advancing the watermark after every round
	// like a retriever loop would — so packets finalize incrementally.
	const rounds = 4
	finalized := int64(0)
	for r := 0; r < rounds; r++ {
		for i, n := range nodes {
			evs := frags[n].Log(n).Events()
			lo, hi := len(evs)*r/rounds, len(evs)*(r+1)/rounds
			chunk := refill.NewCollection()
			for _, e := range evs[lo:hi] {
				chunk.Add(e)
			}
			postLogs(t, client, srv.URL, chunk, (r+i)%2 == 1)
		}
		resp, err := client.Post(fmt.Sprintf("%s/v1/advance?watermark=%d", srv.URL, camp.Duration), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var adv struct{ Finalized, Watermark int64 }
		if err := json.NewDecoder(resp.Body).Decode(&adv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		finalized += adv.Finalized
	}
	if finalized == 0 {
		t.Error("no packet finalized before drain — the advances never bit")
	}

	// The live snapshot and stats endpoints must serve before drain.
	resp, err := client.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats refill.SessionStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Ingested != camp.Logs.TotalEvents() {
		t.Errorf("ingested = %d, want %d", stats.Ingested, camp.Logs.TotalEvents())
	}
	if stats.Drained {
		t.Error("session reports drained before drain")
	}

	resp, err = client.Post(srv.URL+"/v1/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ProtoMajor != 2 {
		t.Errorf("served over HTTP/%d, want HTTP/2", resp.ProtoMajor)
	}
	var got reportView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got.Total != want.Report.Total() || got.Losses != want.Report.LossCount() {
		t.Errorf("drained totals (%d, %d) != batch (%d, %d)",
			got.Total, got.Losses, want.Report.Total(), want.Report.LossCount())
	}
	for c, n := range want.Report.Breakdown() {
		if got.Breakdown[c.String()] != n {
			t.Errorf("cause %v: got %d, want %d", c, got.Breakdown[c.String()], n)
		}
	}

	// The text rendering after drain matches the batch rendering.
	resp, err = client.Get(srv.URL + "/v1/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(text) != refill.RenderBreakdown(want.Report) {
		t.Errorf("text report diverged:\n got: %s\nwant: %s", text, refill.RenderBreakdown(want.Report))
	}

	// Appends after drain are rejected with a conflict.
	var buf bytes.Buffer
	refill.WriteLogs(&buf, frags[camp.Logs.Nodes()[0]])
	resp, err = client.Post(srv.URL+"/v1/append", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("append after drain: %s, want 409", resp.Status)
	}
	resp.Body.Close()
}

// TestServeCheckpointResume crashes the service between two ingest rounds:
// fragments are pushed, a checkpoint is forced via the endpoint, the session
// is abandoned (the "crash"), and a second service resumes from the file.
// Fed the same remaining fragments, the resumed service's drained report —
// JSON and text rendering — must be byte-identical to an uninterrupted run.
func TestServeCheckpointResume(t *testing.T) {
	camp, err := refill.RunCampaign(refill.TinyCampaign(23))
	if err != nil {
		t.Fatal(err)
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{},
		refill.WithSink(camp.Sink),
		refill.WithWindow(0, int64(camp.Duration)))
	if err != nil {
		t.Fatal(err)
	}
	frags, horizon := campaignPieces(t, camp.Logs)
	nodes := camp.Logs.Nodes()
	ckptPath := t.TempDir() + "/session.ckpt"
	sc := refill.SessionConfig{Horizon: horizon}

	// drive pushes rounds [from, to) of every node's log, advancing after
	// each round, then drains and returns the JSON and text reports.
	const rounds = 4
	drive := func(t *testing.T, url string, client *http.Client, from, to int, drain bool) (string, string) {
		t.Helper()
		for r := from; r < to; r++ {
			for _, n := range nodes {
				evs := frags[n].Log(n).Events()
				lo, hi := len(evs)*r/rounds, len(evs)*(r+1)/rounds
				chunk := refill.NewCollection()
				for _, e := range evs[lo:hi] {
					chunk.Add(e)
				}
				postLogs(t, client, url, chunk, r%2 == 1)
			}
			resp, err := client.Post(fmt.Sprintf("%s/v1/advance?watermark=%d", url, camp.Duration), "", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		if !drain {
			return "", ""
		}
		resp, err := client.Post(url+"/v1/drain", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		jsonRep, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resp, err = client.Get(url + "/v1/report?format=text")
		if err != nil {
			t.Fatal(err)
		}
		textRep, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(jsonRep), string(textRep)
	}
	register := func(t *testing.T, url string, client *http.Client) {
		t.Helper()
		for _, n := range nodes {
			resp, err := client.Post(fmt.Sprintf("%s/v1/register?node=%v", url, n), "", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	// Uninterrupted reference run.
	ref, err := an.NewSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	refSrv := httptest.NewServer(newHandler(ref, ""))
	defer refSrv.Close()
	register(t, refSrv.URL, refSrv.Client())
	wantJSON, wantText := drive(t, refSrv.URL, refSrv.Client(), 0, rounds, true)

	// Crashing run: two rounds, checkpoint, abandon the session.
	first, err := an.NewSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(newHandler(first, ckptPath))
	register(t, srv1.URL, srv1.Client())
	drive(t, srv1.URL, srv1.Client(), 0, rounds/2, false)
	resp, err := srv1.Client().Post(srv1.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %s: %s", resp.Status, body)
	}
	srv1.Close() // crash

	// Resume from the file and finish the campaign.
	resumed, err := an.ResumeSession(sc, ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(newHandler(resumed, ckptPath))
	defer srv2.Close()
	gotJSON, gotText := drive(t, srv2.URL, srv2.Client(), rounds/2, rounds, true)

	if gotJSON != wantJSON {
		t.Errorf("resumed JSON report diverged:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
	if gotText != wantText {
		t.Errorf("resumed text report diverged:\n got: %s\nwant: %s", gotText, wantText)
	}

	// Without -checkpoint-dir the endpoint 404s.
	resp, err = refSrv.Client().Post(refSrv.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("checkpoint without dir: %s, want 404", resp.Status)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{}, refill.WithSink(1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := an.NewSession(refill.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(sess, ""))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/append", "text/plain", strings.NewReader("not a log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed append: %s, want 400", resp.Status)
	}

	resp, err = http.Post(srv.URL+"/v1/advance?watermark=soon", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed advance: %s, want 400", resp.Status)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %s", resp.Status)
	}
}
