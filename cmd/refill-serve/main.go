// Command refill-serve runs the REFILL pipeline as a resident ingest
// service: log retrievers push per-node fragments as they collect them, the
// daemon finalizes packets as the watermark advances, and clients query live
// diagnosis reports at any point — without waiting for the campaign to end
// or holding every event in memory.
//
// Usage:
//
//	refill-serve -sink 1 -end 2592000000000 [-addr :8377] [-horizon 5000000]
//
// # Endpoints
//
//	POST /v1/append    body: a log collection — text format by default,
//	                   the compact binary codec with
//	                   Content-Type: application/octet-stream. Each node log
//	                   in the body is appended as that node's next fragment
//	                   (fragments must arrive in log order per node).
//	POST /v1/register  ?node=N — make node count toward the watermark
//	                   before its first fragment. Register every log source
//	                   up front, or early advances may finalize packets
//	                   whose rows at still-unseen nodes are yet to arrive.
//	POST /v1/advance   ?watermark=T — finalize packets provably complete
//	                   below the watermark (clamped to the slowest node).
//	GET  /v1/report    live JSON report snapshot; ?format=text renders the
//	                   cause table instead.
//	GET  /v1/stats     lifecycle counters (watermark, pending rows, ...).
//	POST /v1/drain     finalize everything and return the final report;
//	                   further appends fail.
//	POST /v1/checkpoint  (with -checkpoint-dir) write a checkpoint now.
//	GET  /healthz      liveness.
//
// # Checkpointing
//
// With -checkpoint-dir the daemon periodically persists the session — the
// pending packet rows, per-node watermarks, accumulated outcomes and
// aggregate — to <dir>/session.ckpt (atomically: temp file + rename), every
// -checkpoint-every interval and on demand via POST /v1/checkpoint. On
// startup, an existing checkpoint is resumed: retrievers re-push anything
// they sent after the last checkpoint (per-node fragments in log order, as
// always) and the drained report comes out byte-identical to a run that
// never crashed. Checkpointing requires -retain-flows to be off.
//
// # Transport
//
// With -tls-cert/-tls-key the listener speaks HTTP/2 (negotiated via TLS
// ALPN by net/http) and HTTP/1.1; without them it serves plain HTTP/1.1.
// On SIGINT/SIGTERM the daemon stops accepting requests, finishes in-flight
// ones, drains the session, and prints the final cause table to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	refill "repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8377", "listen address")
		sinkID  = flag.Uint("sink", 0, "sink node id (required)")
		start   = flag.Int64("start", 0, "campaign start time (daily-bin epoch)")
		end     = flag.Int64("end", 0, "campaign end time (bounds a trailing open outage at drain)")
		workers = flag.Int("workers", 0, "reconstruction workers per window (0 all cores, n>0 exactly n)")
		shards  = flag.Int("shards", 0, "origin shards of the pending store (0 = 16)")
		horizon = flag.Int64("horizon", 0, "max within-packet timestamp spread: clock skew + packet lifetime")
		retain  = flag.Bool("retain-flows", false, "keep finalized flows in memory for the drained result")
		ckptDir = flag.String("checkpoint-dir", "", "directory for durable session checkpoints (resumed on startup)")
		ckptDur = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval with -checkpoint-dir (0 = on demand only)")
		tlsCert = flag.String("tls-cert", "", "TLS certificate file (with -tls-key enables HTTPS + HTTP/2)")
		tlsKey  = flag.String("tls-key", "", "TLS key file")
	)
	flag.Parse()
	if *sinkID == 0 {
		fmt.Fprintln(os.Stderr, "refill-serve: -sink is required")
		flag.Usage()
		os.Exit(2)
	}
	if *ckptDir != "" && *retain {
		fmt.Fprintln(os.Stderr, "refill-serve: -checkpoint-dir is incompatible with -retain-flows (flows are not serializable)")
		os.Exit(2)
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{Parallelism: *workers},
		refill.WithSink(refill.NodeID(*sinkID)),
		refill.WithWindow(*start, *end))
	if err != nil {
		fatal(err)
	}
	sc := refill.SessionConfig{Shards: *shards, Horizon: *horizon, RetainFlows: *retain}
	var (
		sess     *refill.Session
		ckptPath string
	)
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
		ckptPath = filepath.Join(*ckptDir, "session.ckpt")
	}
	if ckptPath != "" && fileExists(ckptPath) {
		sess, err = an.ResumeSession(sc, ckptPath)
		if err != nil {
			fatal(fmt.Errorf("resume %s: %w", ckptPath, err))
		}
		st := sess.Stats()
		fmt.Fprintf(os.Stderr, "refill-serve: resumed %s (watermark %d, %d finalized, %d pending rows)\n",
			ckptPath, st.Watermark, st.FinalizedPackets, st.PendingRows)
	} else {
		sess, err = an.NewSession(sc)
		if err != nil {
			fatal(err)
		}
	}
	stopCkpt := startCheckpointer(sess, ckptPath, *ckptDur)
	defer stopCkpt()

	srv := &http.Server{Addr: *addr, Handler: newHandler(sess, ckptPath)}
	errc := make(chan error, 1)
	go func() {
		if *tlsCert != "" || *tlsKey != "" {
			errc <- srv.ListenAndServeTLS(*tlsCert, *tlsKey)
		} else {
			errc <- srv.ListenAndServe()
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "refill-serve: %v, draining\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "refill-serve: shutdown: %v\n", err)
	}
	_, rep := sess.Drain()
	fmt.Print(refill.RenderBreakdown(rep))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "refill-serve: %v\n", err)
	os.Exit(1)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// startCheckpointer writes the session to path every interval until the
// returned stop function is called. A drained session stops the loop (the
// final report is the durable artifact at that point); other write errors
// are logged and retried next tick.
func startCheckpointer(sess *refill.Session, path string, every time.Duration) (stop func()) {
	if path == "" || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := sess.WriteCheckpoint(path); err != nil {
					if errors.Is(err, refill.ErrSessionDrained) {
						return
					}
					fmt.Fprintf(os.Stderr, "refill-serve: checkpoint: %v\n", err)
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// newHandler wires the session endpoints onto a mux. Split out of main so
// tests can mount the service on httptest servers (including HTTP/2 ones).
// ckptPath enables the on-demand checkpoint endpoint ("" disables it).
func newHandler(sess *refill.Session, ckptPath string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if ckptPath == "" {
			httpError(w, http.StatusNotFound, errors.New("checkpointing is not enabled (start with -checkpoint-dir)"))
			return
		}
		if err := sess.WriteCheckpoint(ckptPath); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, map[string]string{"path": ckptPath})
	})
	mux.HandleFunc("POST /v1/append", func(w http.ResponseWriter, r *http.Request) {
		readLogs := refill.ReadLogs
		if r.Header.Get("Content-Type") == "application/octet-stream" {
			readLogs = refill.ReadLogsBinary
		}
		logs, err := readLogs(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ingested := 0
		for _, n := range logs.Nodes() {
			evs := logs.Log(n).Events()
			if err := sess.Append(n, evs); err != nil {
				httpError(w, http.StatusConflict, err)
				return
			}
			ingested += len(evs)
		}
		writeJSON(w, map[string]int{"ingested": ingested, "nodes": len(logs.Nodes())})
	})
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		n, err := refill.ParseNode(r.URL.Query().Get("node"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sess.Register(n)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/advance", func(w http.ResponseWriter, r *http.Request) {
		wm, err := strconv.ParseInt(r.URL.Query().Get("watermark"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad watermark: %w", err))
			return
		}
		n, err := sess.Advance(wm)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, map[string]int64{"finalized": int64(n), "watermark": sess.Watermark()})
	})
	mux.HandleFunc("GET /v1/report", func(w http.ResponseWriter, r *http.Request) {
		rep := sess.Snapshot()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, refill.RenderBreakdown(rep))
			return
		}
		writeJSON(w, reportJSON(rep))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sess.Stats())
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		_, rep := sess.Drain()
		writeJSON(w, reportJSON(rep))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// outageView is one outage window in the JSON report.
type outageView struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// reportView is the wire form of a report snapshot: the cause breakdown
// keyed by cause name, plus totals and the outage schedule.
type reportView struct {
	Sink      string         `json:"sink"`
	Total     int            `json:"total"`
	Losses    int            `json:"losses"`
	Breakdown map[string]int `json:"breakdown"`
	Outages   []outageView   `json:"outages"`
}

func reportJSON(rep *refill.Report) reportView {
	v := reportView{
		Sink:      rep.Sink.String(),
		Total:     rep.Total(),
		Losses:    rep.LossCount(),
		Breakdown: make(map[string]int),
		Outages:   []outageView{},
	}
	//refill:allow maprange — map-to-map copy; JSON object keys are unordered anyway
	for c, n := range rep.Breakdown() {
		v.Breakdown[c.String()] = n
	}
	for _, o := range rep.Outages {
		v.Outages = append(v.Outages, outageView{Start: o.Start, End: o.End})
	}
	return v
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is gone; all we can do is log.
		fmt.Fprintf(os.Stderr, "refill-serve: encode: %v\n", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
