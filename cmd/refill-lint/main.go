// Command refill-lint statically verifies the repo's protocol machinery at
// two layers: the domain layer checks every built-in protocol graph and
// prerequisite table (determinism, reachability, prerequisite soundness,
// representation coherence, compiled-kernel coherence), and the code layer
// runs the custom analyzers in internal/analysis (maprange, wallclock,
// poolhygiene, escapecheck, shardowner) over the packages named on the
// command line.
//
// Usage:
//
//	refill-lint                  verify built-in protocols only
//	refill-lint ./...            also run code analyzers on the packages
//	refill-lint -json ./...      machine-readable output, one JSON object per line
//	refill-lint -fixture all     prove each seeded violation is caught
//
// In -json mode directive-suppressed findings are included with
// "allowed": true (the human-readable mode drops them); the exit status
// counts only non-allowed findings either way.
//
// Exit status: 0 clean, 1 issues found, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/event"
	"repro/internal/fsm"
	"repro/internal/lint"
)

// codeFixturePattern is the seeded code-analyzer violation package; testdata
// is invisible to ./... so it never dirties normal runs.
const codeFixturePattern = "repro/internal/analysis/testdata/src/fixture"

// analyzerFixtures maps the per-pass fixture categories to the seeded
// violation package and the single analyzer expected to catch it.
var analyzerFixtures = map[string]struct {
	pattern  string
	analyzer *analysis.Analyzer
}{
	"escapecheck": {analysis.EscapeFixturePattern, analysis.EscapeCheck},
	"shardowner":  {analysis.ShardFixturePattern, analysis.ShardOwner},
	"session":     {analysis.SessionFixturePattern, analysis.ShardOwner},
	"stealfix":    {analysis.StealFixturePattern, analysis.ShardOwner},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable form of one finding. Protocol issues fill
// pass/subject/message; analyzer diagnostics fill pass/file/line/col/message
// plus the allow-directive status.
type jsonDiag struct {
	Pass    string `json:"pass"`
	Subject string `json:"subject,omitempty"`
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
	Allowed bool   `json:"allowed"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("refill-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fixture := fs.String("fixture", "", "run a seeded violation fixture (category or \"all\") and exit non-zero when it is caught")
	asJSON := fs.Bool("json", false, "emit one JSON object per finding (includes allow-suppressed findings with \"allowed\": true)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fixture != "" {
		return runFixtures(*fixture, stdout, stderr)
	}

	enc := json.NewEncoder(stdout)
	issues := verifyProtocols()
	for _, i := range issues {
		if *asJSON {
			enc.Encode(jsonDiag{Pass: i.Check, Subject: i.Subject, Message: i.Detail})
		} else {
			fmt.Fprintln(stdout, i)
		}
	}
	bad := len(issues) > 0

	if fs.NArg() > 0 {
		pkgs, err := analysis.Load("", fs.Args()...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if *asJSON {
			for _, d := range analysis.RunAll(pkgs, analysis.Analyzers()) {
				enc.Encode(jsonDiag{
					Pass:    d.Analyzer,
					File:    d.Pos.Filename,
					Line:    d.Pos.Line,
					Col:     d.Pos.Column,
					Message: d.Message,
					Allowed: d.Allowed,
				})
				bad = bad || !d.Allowed
			}
		} else {
			diags := analysis.Run(pkgs, analysis.Analyzers())
			for _, d := range diags {
				fmt.Fprintln(stdout, d)
			}
			bad = bad || len(diags) > 0
		}
	}

	if bad {
		return 1
	}
	if !*asJSON {
		fmt.Fprintln(stdout, "refill-lint: ok")
	}
	return 0
}

// verifyProtocols runs the domain verifier over every protocol the repo
// ships, labeling each issue with its protocol.
func verifyProtocols() []lint.Issue {
	protocols := []struct {
		name string
		p    *fsm.Protocol
	}{
		{"ctp", fsm.DefaultCTP()},
		{"tableii", fsm.TableII()},
		{"extended", fsm.ExtendedCTP()},
		{"dissemination", fsm.Dissemination()},
	}
	var out []lint.Issue
	for _, pr := range protocols {
		for _, i := range lint.Protocol(pr.p) {
			i.Subject = pr.name + ": " + i.Subject
			out = append(out, i)
		}
	}
	return out
}

// runFixtures seeds the requested violation category (or all of them), runs
// the matching checker, and exits 1 when — as expected — the violation is
// caught and printed. A fixture the linter fails to catch is a bug in the
// linter itself and exits 2.
func runFixtures(category string, stdout, stderr io.Writer) int {
	categories := []string{category}
	if category == "all" {
		categories = append(append([]string{}, lint.FixtureCategories...), "code-analyzer", "escapecheck", "shardowner", "session", "stealfix", "snapfix")
	}
	caughtAll := true
	reported := 0
	for _, c := range categories {
		var lines []string
		if c == "snapfix" {
			// Seeded snapshot-file corruptions: each kind must be rejected
			// by the snapshot reader's validation, not silently decoded.
			for _, kind := range event.SnapshotFixtureKinds {
				msg, err := event.BrokenSnapshotFixture(kind)
				if err != nil {
					fmt.Fprintln(stderr, err)
					return 2
				}
				lines = append(lines, fmt.Sprintf("%s: %s", kind, msg))
			}
		} else if c == "code-analyzer" {
			pkgs, err := analysis.Load("", codeFixturePattern)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			for _, d := range analysis.Run(pkgs, analysis.Analyzers()) {
				lines = append(lines, d.String())
			}
		} else if fx, ok := analyzerFixtures[c]; ok {
			pkgs, err := analysis.Load("", fx.pattern)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			for _, d := range analysis.Run(pkgs, []*analysis.Analyzer{fx.analyzer}) {
				lines = append(lines, d.String())
			}
		} else {
			issues, err := lint.BrokenFixture(c)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			for _, i := range issues {
				lines = append(lines, i.String())
			}
		}
		if len(lines) == 0 {
			fmt.Fprintf(stderr, "refill-lint: fixture %q: seeded violation NOT caught\n", c)
			caughtAll = false
			continue
		}
		for _, l := range lines {
			fmt.Fprintf(stdout, "fixture %s: %s\n", c, l)
			reported++
		}
	}
	if !caughtAll {
		return 2
	}
	fmt.Fprintf(stdout, "refill-lint: %d seeded violations caught as expected\n", reported)
	return 1
}
