package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCleanRepoExitsZero covers both CLI layers on the real repo: protocol
// verification plus the code analyzers over every module package.
func TestCleanRepoExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean repo\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "refill-lint: ok") {
		t.Errorf("missing ok line in %q", out.String())
	}
}

func TestProtocolOnlyModeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d with no args\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestFixtureCategories runs each seeded violation through the CLI and
// requires a non-zero exit plus a diagnostic naming the expected check.
func TestFixtureCategories(t *testing.T) {
	cases := []struct {
		category string
		want     string
	}{
		{"determinism", "[determinism]"},
		{"reachability", "[reachability]"},
		{"prereq-cycle", "[prereq]"},
		{"divergence", "[coherence]"},
		{"code-analyzer", "[maprange]"},
		{"escapecheck", "[escapecheck]"},
		{"shardowner", "[shardowner]"},
		{"snapfix", "span index mis-ordered"},
	}
	for _, c := range cases {
		var out, errb bytes.Buffer
		code := run([]string{"-fixture", c.category}, &out, &errb)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", c.category, code, out.String(), errb.String())
			continue
		}
		if !strings.Contains(out.String(), c.want) {
			t.Errorf("%s: no %s diagnostic in output:\n%s", c.category, c.want, out.String())
		}
	}
}

func TestFixtureAll(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fixture", "all"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"[determinism]", "[reachability]", "[prereq]", "[coherence]", "[maprange]", "[wallclock]", "[poolhygiene]", "[escapecheck]", "[shardowner]", "span index mis-ordered", "overlaps the previous section"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fixture all: missing %s in output:\n%s", want, out.String())
		}
	}
}

// TestJSONMode runs the code analyzers over the escapecheck fixture in -json
// mode and checks the machine-readable contract: one JSON object per line,
// pass/position/message fields filled, the allow-suppressed amortized-buffer
// finding present with allowed=true, and exit status driven by the
// non-allowed findings only.
func TestJSONMode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "repro/internal/analysis/testdata/src/escapefix"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture seeds violations)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	var sawAllowed, sawViolation bool
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var d struct {
			Pass    string `json:"pass"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
			Allowed bool   `json:"allowed"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON output line %q: %v", line, err)
		}
		if d.Pass == "" || d.Message == "" {
			t.Errorf("JSON diagnostic missing pass or message: %s", line)
		}
		if d.Pass == "escapecheck" && (d.File == "" || d.Line == 0) {
			t.Errorf("analyzer diagnostic missing position: %s", line)
		}
		if d.Allowed {
			sawAllowed = true
		} else {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("no non-allowed finding in -json output")
	}
	if !sawAllowed {
		t.Error("-json output does not include the allow-suppressed finding with allowed=true")
	}
}

// TestJSONModeCleanRepoExitsZero proves allowed-only output still exits 0:
// the allow-suppressed findings in the real repo are visible but not fatal.
func TestJSONModeCleanRepoExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean repo\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		var d struct {
			Allowed bool `json:"allowed"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("non-JSON output line %q: %v", line, err)
		}
		if !d.Allowed {
			t.Errorf("clean repo emitted a non-allowed finding: %s", line)
		}
	}
}

func TestUnknownFixtureExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fixture", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
