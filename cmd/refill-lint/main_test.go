package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestCleanRepoExitsZero covers both CLI layers on the real repo: protocol
// verification plus the code analyzers over every module package.
func TestCleanRepoExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean repo\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "refill-lint: ok") {
		t.Errorf("missing ok line in %q", out.String())
	}
}

func TestProtocolOnlyModeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit %d with no args\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestFixtureCategories runs each seeded violation through the CLI and
// requires a non-zero exit plus a diagnostic naming the expected check.
func TestFixtureCategories(t *testing.T) {
	cases := []struct {
		category string
		want     string
	}{
		{"determinism", "[determinism]"},
		{"reachability", "[reachability]"},
		{"prereq-cycle", "[prereq]"},
		{"divergence", "[coherence]"},
		{"code-analyzer", "[maprange]"},
	}
	for _, c := range cases {
		var out, errb bytes.Buffer
		code := run([]string{"-fixture", c.category}, &out, &errb)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", c.category, code, out.String(), errb.String())
			continue
		}
		if !strings.Contains(out.String(), c.want) {
			t.Errorf("%s: no %s diagnostic in output:\n%s", c.category, c.want, out.String())
		}
	}
}

func TestFixtureAll(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fixture", "all"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"[determinism]", "[reachability]", "[prereq]", "[coherence]", "[maprange]", "[wallclock]", "[poolhygiene]"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fixture all: missing %s in output:\n%s", want, out.String())
		}
	}
}

func TestUnknownFixtureExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fixture", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
