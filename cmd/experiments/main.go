// Command experiments regenerates the paper's evaluation artifacts from the
// simulated CitySee campaign: Table II and Figures 4, 5, 6, 8 and 9, plus the
// extension experiments (accuracy vs log loss, ablations).
//
// Usage:
//
//	experiments                 # everything at default scale
//	experiments -fig 9          # one artifact
//	experiments -nodes 200 -days 30 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "artifact: table2|3|4|5|6|8|9|accuracy|ablation|policies|extended|clocks|delays|all")
		nodes  = flag.Int("nodes", 0, "override node count")
		days   = flag.Int("days", 0, "override campaign days")
		seed   = flag.Int64("seed", 0, "override seed")
		small  = flag.Bool("small", false, "use the small benchmark-scale campaign")
		svgDir = flag.String("svg", "", "also write fig*.svg into this directory")
		csvDir = flag.String("csv", "", "also write fig*.csv series into this directory")
		prof   profiling.Flags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()
	stopProf, err := profiling.Start(prof)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	for _, dir := range []string{*svgDir, *csvDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}
	writeSVG := func(name, content string) {
		if *svgDir == "" {
			return
		}
		path := filepath.Join(*svgDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	writeCSV := func(name string, fill func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fill(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	cfg := experiments.DefaultCampaign()
	if *small {
		cfg = experiments.SmallCampaign()
	}
	if *nodes > 0 {
		cfg.Nodes = *nodes
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	want := func(k string) bool { return *fig == "all" || *fig == k }

	if want("table2") {
		section("Table II — three-node walkthrough")
		fmt.Print(experiments.TableII())
	}
	if want("3") {
		section("Figure 3 — connected-engine scenarios (dissemination)")
		res, err := experiments.Fig3(10, 60, cfg.Seed+7, 0.3)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}

	needCampaign := false
	for _, k := range []string{"4", "5", "6", "8", "9"} {
		if want(k) {
			needCampaign = true
		}
	}
	if needCampaign {
		fmt.Fprintf(os.Stderr, "simulating campaign: %d nodes, %d days, seed %d…\n",
			orDefault(cfg.Nodes, 120), orDefault(cfg.Days, 30), cfg.Seed)
		c, err := experiments.RunCampaign(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %d packets (%d lost); %d log events collected\n\n",
			c.Res.Truth.Generated, c.Res.Truth.LossCount(), c.Res.Logs.TotalEvents())
		if want("4") {
			section("Figure 4 — temporal distribution, SOURCE view")
			r := experiments.Fig4(c)
			fmt.Print(r.Text)
			writeSVG("fig4.svg", report.ScatterSVG(r.Points,
				"Fig. 4 — lost packets over time, source view"))
			writeCSV("fig4.csv", func(w io.Writer) error { return report.PointsCSV(w, r.Points) })
		}
		if want("5") {
			section("Figure 5 — loss causes by LOSS POSITION (REFILL)")
			r := experiments.Fig5(c)
			fmt.Print(r.Text)
			writeSVG("fig5.svg", report.ScatterSVG(r.Points,
				"Fig. 5 — lost packets over time, loss-position view (REFILL)"))
			writeCSV("fig5.csv", func(w io.Writer) error { return report.PointsCSV(w, r.Points) })
		}
		if want("6") {
			section("Figure 6 — daily cause composition")
			r := experiments.Fig6(c)
			fmt.Print(r.Text)
			writeSVG("fig6.svg", report.DailySVG(r.Daily,
				"Fig. 6 — daily loss-cause composition"))
			writeCSV("fig6.csv", func(w io.Writer) error { return report.DailyCSV(w, r.Daily) })
		}
		if want("8") {
			section("Figure 8 — spatial distribution of received losses")
			fmt.Print(experiments.Fig8(c).Text)
			writeSVG("fig8.svg", report.SpatialSVG(c.Out.Report, c.Res.Topology,
				"Fig. 8 — spatial distribution of received losses"))
			writeCSV("fig8.csv", func(w io.Writer) error {
				return report.SpatialCSV(w, c.Out.Report, c.Res.Topology)
			})
		}
		if want("9") {
			section("Figure 9 / Section V-C — cause breakdown")
			fmt.Print(experiments.Fig9(c).Text)
			writeSVG("fig9.svg", report.BreakdownSVG(c.Out.Report,
				"Fig. 9 — loss cause breakdown"))
			writeCSV("fig9.csv", func(w io.Writer) error { return report.BreakdownCSV(w, c.Out.Report) })
			rows := experiments.ScoreAllAnalyzers(c)
			var rrows []report.AccuracyRow
			for _, r := range rows {
				rrows = append(rrows, report.AccuracyRow{Name: r.Name, Acc: r.Acc})
			}
			fmt.Println("\nanalyzer accuracy vs ground truth:")
			fmt.Print(report.AccuracyTable(rrows))
		}
	}

	if want("accuracy") {
		section("E-A1 — reconstruction accuracy vs log loss")
		base := workload.CitySeeConfig{Nodes: 49, Days: 4, Seed: cfg.Seed,
			Period: 15 * sim.Minute, SnowDays: []int{2}, FixDay: 3, OutageHours: 3}
		res, err := experiments.AccuracyVsLogLoss(base, []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}
	if want("ablation") {
		section("E-A2 — intra/inter-node transition ablations")
		res, err := experiments.Ablations(workload.CitySeeConfig{Nodes: 49, Days: 4,
			Seed: cfg.Seed, Period: 15 * sim.Minute, SnowDays: []int{2}, FixDay: 3, OutageHours: 3})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}
	if want("policies") {
		section("E-A4 — logging policies: diagnosability vs log volume")
		res, err := experiments.LoggingPolicies(workload.CitySeeConfig{Nodes: 49, Days: 4,
			Seed: cfg.Seed, Period: 15 * sim.Minute, SnowDays: []int{2}, FixDay: 3, OutageHours: 3})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}
	if want("extended") {
		section("E-A5 — extended event set (queue events)")
		res, err := experiments.ExtendedEvents(workload.CitySeeConfig{Nodes: 49, Days: 4,
			Seed: cfg.Seed, Period: 15 * sim.Minute, SnowDays: []int{2}, FixDay: 3, OutageHours: 3})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}
	if want("clocks") {
		section("E-A6 — post-hoc clock recovery from event flows")
		res, err := experiments.ClockRecoveryOn(workload.CitySeeConfig{Nodes: 49, Days: 4,
			Seed: cfg.Seed, Period: 15 * sim.Minute, SnowDays: []int{2}, FixDay: 3, OutageHours: 3})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}
	if want("delays") {
		section("E-A7 — per-packet delay from unsynchronized logs")
		res, err := experiments.DelaysOn(workload.CitySeeConfig{Nodes: 49, Days: 4,
			Seed: cfg.Seed, Period: 15 * sim.Minute, SnowDays: []int{2}, FixDay: 3, OutageHours: 3})
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Text)
	}
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
