// Command citysee simulates a CitySee-like data-collection campaign and
// writes the lossy per-node logs (and optionally the ground-truth packet
// fates) to disk. The logs are what cmd/refill analyzes.
//
// Usage:
//
//	citysee -nodes 120 -days 30 -seed 1 -o logs.txt -truth truth.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/sim/network"
	"repro/internal/workload"

	refill "repro"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 120, "deployment size (node 1 is the sink)")
		days      = flag.Int("days", 30, "campaign length in days")
		seed      = flag.Int64("seed", 0, "random seed (0 = scenario default)")
		periodMin = flag.Int("period", 20, "sensing period in minutes")
		logLoss   = flag.Float64("logloss", 0.20, "log-record loss rate")
		out       = flag.String("o", "logs.txt", "output log file")
		truthOut  = flag.String("truth", "", "optional ground-truth fate file")
		binFormat = flag.Bool("binary", false, "write the compact binary log format")
		quiet     = flag.Bool("q", false, "suppress the summary")
	)
	flag.Parse()

	cfg := workload.CitySeeConfig{
		Nodes:       *nodes,
		Days:        *days,
		Seed:        *seed,
		Period:      sim.Time(*periodMin) * sim.Minute,
		LogLossRate: *logLoss,
	}
	res, err := refill.RunCampaign(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	writeLogs := refill.WriteLogs
	if *binFormat {
		writeLogs = refill.WriteLogsBinary
	}
	if err := writeLogs(f, res.Logs); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if *truthOut != "" {
		tf, err := os.Create(*truthOut)
		if err != nil {
			fatal(err)
		}
		if err := network.WriteFates(tf, res.Truth.Fates); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Printf("campaign: %d nodes, %d days, sink=%v\n", res.Config.Nodes, res.Config.Days, res.Sink)
		fmt.Printf("packets:  %d generated, %d delivered, %d lost\n",
			res.Truth.Generated, res.Truth.Delivered, res.Truth.LossCount())
		fmt.Printf("logs:     %d events offered, %d lost in collection, %d written to %s\n",
			res.LogsSeen, res.LogsDropped, res.Logs.TotalEvents(), *out)
		if *truthOut != "" {
			fmt.Printf("truth:    %d fates written to %s\n", len(res.Truth.Fates), *truthOut)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "citysee:", err)
	os.Exit(1)
}
