// Command benchguard compares a `go test -bench -benchmem` run against a
// checked-in baseline and fails when allocations regress.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchguard -baseline bench_baseline.txt
//
// Only allocs/op is guarded by default: unlike ns/op it is deterministic
// for a given code path — independent of the machine, CPU contention, and
// frequency scaling — so a CI runner can enforce a tight threshold without
// flaking. A benchmark regresses when its allocs/op exceeds the baseline by
// more than -tolerance (default 10%). The ns/op delta against the baseline
// is printed alongside each verdict line for trend visibility; by default it
// is informational only and never fails the run. Passing -ns-tolerance opts
// into gating wall time too — a benchmark then also fails when its ns/op
// exceeds the baseline by more than that fraction. Reserve it for quiet,
// pinned machines: on shared CI runners the timing gate WILL flake, which is
// exactly why it is off by default. Benchmarks absent from the baseline are
// reported but don't fail the run (add them to the baseline when they
// stabilize); baseline entries missing from the input fail it, so the guard
// can't rot silently when a benchmark is renamed.
//
// Custom b.ReportMetric values (events/s throughput, flow counts, …) are
// parsed alongside the standard columns: they ride along in the -json
// document and the text delta table — with a percentage delta when the
// baseline carries the same metric — so throughput trends are recorded per
// run (see BENCH_*.json at the repo root). Like ns/op they never decide
// pass/fail: rates share all of wall time's machine-dependence.
//
// With -json the verdict is emitted as one JSON object instead of text:
// ns/op, B/op, and the custom metrics ride along for trend tracking, but
// the pass/fail decision still rests on allocs/op alone.
//
// To refresh the baseline after an intentional change, run EXACTLY the
// invocation the CI bench-regression job uses (.github/workflows/ci.yml) —
// allocs/op varies with -benchtime (per-run setup amortizes over more
// iterations), so a baseline recorded at a different iteration count would
// mismatch CI:
//
//	go test -run '^$' \
//	    -bench '^(BenchmarkAnalyzeCampaign|BenchmarkAnalyzePacket|BenchmarkAnalyzeSkewed|BenchmarkEngineChain|BenchmarkBinaryCodec|BenchmarkTableII|BenchmarkFlowOutput|BenchmarkDiagnosis|BenchmarkKernel|BenchmarkSessionIngest|BenchmarkSnapshot)$' \
//	    -benchmem -benchtime 1x . > bench_baseline.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's measurements from -benchmem output. Metrics
// carries the benchmark's b.ReportMetric values keyed by unit (e.g.
// "events/s"); the standard three columns stay in their own fields.
type Result struct {
	Name     string             `json:"name"`
	NsOp     float64            `json:"ns_op"`
	BytesOp  int64              `json:"bytes_op"`
	AllocsOp int64              `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one line of the verdict: a current Result joined with its
// baseline. Status is "ok", "fail" (regressed or missing from input), or
// "note" (not in the baseline yet).
type Entry struct {
	Result
	BaselineAllocs int64   `json:"baseline_allocs_op,omitempty"`
	DeltaPct       float64 `json:"delta_pct"`
	// BaselineNs and NsDeltaPct track wall-time drift against the baseline.
	// Informational only: ns/op never decides pass/fail (see package doc).
	BaselineNs float64 `json:"baseline_ns_op,omitempty"`
	NsDeltaPct float64 `json:"ns_delta_pct,omitempty"`
	// BaselineMetrics mirrors Result.Metrics for the baseline run, so the
	// delta table (and -json consumers) can show throughput drift. Also
	// informational only.
	BaselineMetrics map[string]float64 `json:"baseline_metrics,omitempty"`
	Status          string             `json:"status"`
	Detail          string             `json:"detail,omitempty"`
}

// report is the top-level -json document.
type report struct {
	Tolerance float64 `json:"tolerance"`
	// NsTolerance is the opt-in wall-time gate; 0 means ns/op was
	// informational for this run.
	NsTolerance float64 `json:"ns_tolerance,omitempty"`
	Pass        bool    `json:"pass"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// gomaxprocsSuffix is the -8 in `BenchmarkName-8`: stripped so baselines
// recorded on one machine compare against runs on another.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine token-walks one line of the testing package's result format:
//
//	BenchmarkName-8   3   342105525 ns/op   2751657 events/s   84874053 B/op   190633 allocs/op
//
// After the name and the iteration count the line is (value, unit) pairs:
// ns/op, B/op, and allocs/op land in their Result fields, every other unit
// (b.ReportMetric) lands in Metrics. Lines without allocs/op are not
// benchmark results for our purposes (the guard needs -benchmem output) and
// are skipped, as is anything that doesn't look like a result line at all.
func parseLine(line string) (Result, bool, error) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false, nil
	}
	if _, err := strconv.Atoi(f[1]); err != nil {
		return Result{}, false, nil
	}
	res := Result{Name: gomaxprocsSuffix.ReplaceAllString(f[0], "")}
	seenAllocs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bad value %q in %q: %w", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			res.NsOp = v
		case "B/op":
			res.BytesOp = int64(v)
		case "allocs/op":
			res.AllocsOp = int64(v)
			seenAllocs = true
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	if !seenAllocs {
		return Result{}, false, nil
	}
	return res, true, nil
}

// parse extracts benchmark results from -benchmem output. Repeated runs of
// the same name (e.g. -count=N) keep the last value.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			out[res.Name] = res
		}
	}
	return out, sc.Err()
}

// check compares current allocs against the baseline. tolerance is
// fractional (0.10 = 10%); nsTolerance > 0 additionally gates ns/op at that
// fraction (0 keeps timing informational). Entries come back in
// deterministic order: baseline benchmarks sorted by name, then
// not-in-baseline notes.
func check(baseline, current map[string]Result, tolerance, nsTolerance float64) ([]Entry, bool) {
	var entries []Entry
	ok := true
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name].AllocsOp
		cur, found := current[name]
		if !found {
			entries = append(entries, Entry{
				Result: Result{Name: name}, BaselineAllocs: base,
				Status: "fail", Detail: "in baseline but missing from input",
			})
			ok = false
			continue
		}
		delta := 0.0
		if base > 0 {
			delta = 100 * (float64(cur.AllocsOp)/float64(base) - 1)
		}
		e := Entry{Result: cur, BaselineAllocs: base, DeltaPct: delta, Status: "ok"}
		if baseNs := baseline[name].NsOp; baseNs > 0 && cur.NsOp > 0 {
			e.BaselineNs = baseNs
			e.NsDeltaPct = 100 * (cur.NsOp/baseNs - 1)
		}
		if len(baseline[name].Metrics) > 0 {
			e.BaselineMetrics = baseline[name].Metrics
		}
		if float64(cur.AllocsOp) > float64(base)*(1+tolerance) {
			e.Status = "fail"
			e.Detail = fmt.Sprintf("%+.1f%% > %.0f%% tolerance", delta, tolerance*100)
			ok = false
		}
		if nsTolerance > 0 && e.BaselineNs > 0 && cur.NsOp > e.BaselineNs*(1+nsTolerance) {
			e.Status = "fail"
			nsDetail := fmt.Sprintf("ns/op %+.1f%% > %.0f%% ns-tolerance", e.NsDeltaPct, nsTolerance*100)
			if e.Detail != "" {
				e.Detail += "; " + nsDetail
			} else {
				e.Detail = nsDetail
			}
			ok = false
		}
		entries = append(entries, e)
	}
	extras := make([]string, 0, len(current))
	for name := range current {
		if _, known := baseline[name]; !known {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		entries = append(entries, Entry{Result: current[name], Status: "note"})
	}
	return entries, ok
}

// fmtMetric prints a metric value compactly: integers without a fraction,
// everything else in shortest-round-trip form.
func fmtMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricsSuffix renders an entry's custom metrics for the delta table, with
// a percentage drift wherever the baseline recorded the same unit. Always
// informational — throughput is as machine-bound as wall time.
func metricsSuffix(e Entry) string {
	if len(e.Metrics) == 0 {
		return ""
	}
	units := make([]string, 0, len(e.Metrics))
	for u := range e.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	var b strings.Builder
	for _, u := range units {
		v := e.Metrics[u]
		if bv, ok := e.BaselineMetrics[u]; ok && bv != 0 {
			fmt.Fprintf(&b, "; %s %s vs baseline %s (%+.1f%%)", fmtMetric(v), u, fmtMetric(bv), 100*(v/bv-1))
		} else {
			fmt.Fprintf(&b, "; %s %s", fmtMetric(v), u)
		}
	}
	return b.String()
}

// render turns entries into the human verdict lines. The trailing ns/op
// delta, when baseline timing is available, is marked non-fatal unless the
// run opted into the -ns-tolerance gate; custom metrics follow it,
// informational always.
func render(entries []Entry, tolerance, nsTolerance float64) []string {
	lines := make([]string, 0, len(entries))
	for _, e := range entries {
		ns := ""
		if e.BaselineNs > 0 && e.NsOp > 0 {
			if nsTolerance > 0 {
				ns = fmt.Sprintf("; %.0f ns/op vs baseline %.0f (%+.1f%%)",
					e.NsOp, e.BaselineNs, e.NsDeltaPct)
			} else {
				ns = fmt.Sprintf("; %.0f ns/op vs baseline %.0f (%+.1f%%, non-fatal)",
					e.NsOp, e.BaselineNs, e.NsDeltaPct)
			}
		}
		ns += metricsSuffix(e)
		switch {
		case e.Status == "fail" && e.Detail == "in baseline but missing from input":
			lines = append(lines, fmt.Sprintf("FAIL %s: %s", e.Name, e.Detail))
		case e.Status == "fail":
			lines = append(lines, fmt.Sprintf("FAIL %s: %d allocs/op, baseline %d (%s)%s",
				e.Name, e.AllocsOp, e.BaselineAllocs, e.Detail, ns))
		case e.Status == "note":
			lines = append(lines, fmt.Sprintf("note %s: %d allocs/op, not in baseline%s", e.Name, e.AllocsOp, metricsSuffix(e)))
		default:
			lines = append(lines, fmt.Sprintf("ok   %s: %d allocs/op, baseline %d (%+.1f%%)%s",
				e.Name, e.AllocsOp, e.BaselineAllocs, e.DeltaPct, ns))
		}
	}
	return lines
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.txt", "baseline benchmark output to compare against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op regression")
	nsTolerance := flag.Float64("ns-tolerance", 0, "opt-in fractional ns/op regression gate (0 = informational only; timing flakes on shared runners)")
	jsonOut := flag.Bool("json", false, "emit the verdict as one JSON object (ns/op and B/op included)")
	flag.Parse()

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := parse(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("no benchmark lines in baseline %s", *baselinePath))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input (run with -bench and -benchmem)"))
	}

	entries, ok := check(baseline, current, *tolerance, *nsTolerance)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{Tolerance: *tolerance, NsTolerance: *nsTolerance, Pass: ok, Benchmarks: entries}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(strings.Join(render(entries, *tolerance, *nsTolerance), "\n"))
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
