// Command benchguard compares a `go test -bench -benchmem` run against a
// checked-in baseline and fails when allocations regress.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchguard -baseline bench_baseline.txt
//
// Only allocs/op is guarded: unlike ns/op it is deterministic for a given
// code path — independent of the machine, CPU contention, and frequency
// scaling — so a CI runner can enforce a tight threshold without flaking.
// A benchmark regresses when its allocs/op exceeds the baseline by more
// than -tolerance (default 10%). Benchmarks absent from the baseline are
// reported but don't fail the run (add them to the baseline when they
// stabilize); baseline entries missing from the input fail it, so the
// guard can't rot silently when a benchmark is renamed.
//
// To refresh the baseline after an intentional change, run EXACTLY the
// invocation the CI bench-regression job uses (.github/workflows/ci.yml) —
// allocs/op varies with -benchtime (per-run setup amortizes over more
// iterations), so a baseline recorded at a different iteration count would
// mismatch CI:
//
//	go test -run '^$' \
//	    -bench '^(BenchmarkAnalyzeCampaign|BenchmarkAnalyzePacket|BenchmarkEngineChain|BenchmarkBinaryCodec|BenchmarkTableII)$' \
//	    -benchmem -benchtime 1x . > bench_baseline.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches the testing package's benchmark result format:
//
//	BenchmarkName-8   3   342105525 ns/op   84874053 B/op   190633 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines recorded on one
// machine compare against runs on another.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?\s(\d+) allocs/op`)

// parse extracts benchmark name -> allocs/op from -benchmem output.
// Sub-benchmark runs of the same name (e.g. -count=N) keep the last value.
func parse(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = n
	}
	return out, sc.Err()
}

// check compares current allocs against the baseline and returns human
// verdict lines plus whether the run passed. tolerance is fractional
// (0.10 = 10%).
func check(baseline, current map[string]int64, tolerance float64) ([]string, bool) {
	var lines []string
	ok := true
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	// Stable report order regardless of map iteration.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		base := baseline[name]
		cur, found := current[name]
		if !found {
			lines = append(lines, fmt.Sprintf("FAIL %s: in baseline but missing from input", name))
			ok = false
			continue
		}
		limit := float64(base) * (1 + tolerance)
		delta := 0.0
		if base > 0 {
			delta = 100 * (float64(cur)/float64(base) - 1)
		}
		if float64(cur) > limit {
			lines = append(lines, fmt.Sprintf("FAIL %s: %d allocs/op, baseline %d (%+.1f%% > %.0f%% tolerance)",
				name, cur, base, delta, tolerance*100))
			ok = false
		} else {
			lines = append(lines, fmt.Sprintf("ok   %s: %d allocs/op, baseline %d (%+.1f%%)",
				name, cur, base, delta))
		}
	}
	for name, cur := range current {
		if _, known := baseline[name]; !known {
			lines = append(lines, fmt.Sprintf("note %s: %d allocs/op, not in baseline", name, cur))
		}
	}
	return lines, ok
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.txt", "baseline benchmark output to compare against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op regression")
	flag.Parse()

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := parse(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("no benchmark lines in baseline %s", *baselinePath))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input (run with -bench and -benchmem)"))
	}

	lines, ok := check(baseline, current, *tolerance)
	fmt.Println(strings.Join(lines, "\n"))
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
