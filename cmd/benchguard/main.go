// Command benchguard compares a `go test -bench -benchmem` run against a
// checked-in baseline and fails when allocations regress.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchguard -baseline bench_baseline.txt
//
// Only allocs/op is guarded by default: unlike ns/op it is deterministic
// for a given code path — independent of the machine, CPU contention, and
// frequency scaling — so a CI runner can enforce a tight threshold without
// flaking. A benchmark regresses when its allocs/op exceeds the baseline by
// more than -tolerance (default 10%). The ns/op delta against the baseline
// is printed alongside each verdict line for trend visibility; by default it
// is informational only and never fails the run. Passing -ns-tolerance opts
// into gating wall time too — a benchmark then also fails when its ns/op
// exceeds the baseline by more than that fraction. Reserve it for quiet,
// pinned machines: on shared CI runners the timing gate WILL flake, which is
// exactly why it is off by default. Benchmarks absent from the baseline are
// reported but don't fail the run (add them to the baseline when they
// stabilize); baseline entries missing from the input fail it, so the guard
// can't rot silently when a benchmark is renamed.
//
// With -json the verdict is emitted as one JSON object instead of text:
// ns/op and B/op ride along for trend tracking (see BENCH_*.json at the
// repo root), but the pass/fail decision still rests on allocs/op alone.
//
// To refresh the baseline after an intentional change, run EXACTLY the
// invocation the CI bench-regression job uses (.github/workflows/ci.yml) —
// allocs/op varies with -benchtime (per-run setup amortizes over more
// iterations), so a baseline recorded at a different iteration count would
// mismatch CI:
//
//	go test -run '^$' \
//	    -bench '^(BenchmarkAnalyzeCampaign|BenchmarkAnalyzePacket|BenchmarkEngineChain|BenchmarkBinaryCodec|BenchmarkTableII|BenchmarkFlowOutput|BenchmarkDiagnosis|BenchmarkKernel|BenchmarkSessionIngest|BenchmarkSnapshot)$' \
//	    -benchmem -benchtime 1x . > bench_baseline.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's measurements from -benchmem output.
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Entry is one line of the verdict: a current Result joined with its
// baseline. Status is "ok", "fail" (regressed or missing from input), or
// "note" (not in the baseline yet).
type Entry struct {
	Result
	BaselineAllocs int64   `json:"baseline_allocs_op,omitempty"`
	DeltaPct       float64 `json:"delta_pct"`
	// BaselineNs and NsDeltaPct track wall-time drift against the baseline.
	// Informational only: ns/op never decides pass/fail (see package doc).
	BaselineNs float64 `json:"baseline_ns_op,omitempty"`
	NsDeltaPct float64 `json:"ns_delta_pct,omitempty"`
	Status     string  `json:"status"`
	Detail     string  `json:"detail,omitempty"`
}

// report is the top-level -json document.
type report struct {
	Tolerance float64 `json:"tolerance"`
	// NsTolerance is the opt-in wall-time gate; 0 means ns/op was
	// informational for this run.
	NsTolerance float64 `json:"ns_tolerance,omitempty"`
	Pass        bool    `json:"pass"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// benchLine matches the testing package's benchmark result format:
//
//	BenchmarkName-8   3   342105525 ns/op   84874053 B/op   190633 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines recorded on one
// machine compare against runs on another. Custom metrics between ns/op
// and B/op (ReportMetric) are skipped by the lazy middle match.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op.*?\s(\d+) B/op\s+(\d+) allocs/op`)

// parse extracts benchmark results from -benchmem output. Repeated runs of
// the same name (e.g. -count=N) keep the last value.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		bytes, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
		}
		allocs, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = Result{Name: m[1], NsOp: ns, BytesOp: bytes, AllocsOp: allocs}
	}
	return out, sc.Err()
}

// check compares current allocs against the baseline. tolerance is
// fractional (0.10 = 10%); nsTolerance > 0 additionally gates ns/op at that
// fraction (0 keeps timing informational). Entries come back in
// deterministic order: baseline benchmarks sorted by name, then
// not-in-baseline notes.
func check(baseline, current map[string]Result, tolerance, nsTolerance float64) ([]Entry, bool) {
	var entries []Entry
	ok := true
	names := make([]string, 0, len(baseline))
	for n := range baseline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name].AllocsOp
		cur, found := current[name]
		if !found {
			entries = append(entries, Entry{
				Result: Result{Name: name}, BaselineAllocs: base,
				Status: "fail", Detail: "in baseline but missing from input",
			})
			ok = false
			continue
		}
		delta := 0.0
		if base > 0 {
			delta = 100 * (float64(cur.AllocsOp)/float64(base) - 1)
		}
		e := Entry{Result: cur, BaselineAllocs: base, DeltaPct: delta, Status: "ok"}
		if baseNs := baseline[name].NsOp; baseNs > 0 && cur.NsOp > 0 {
			e.BaselineNs = baseNs
			e.NsDeltaPct = 100 * (cur.NsOp/baseNs - 1)
		}
		if float64(cur.AllocsOp) > float64(base)*(1+tolerance) {
			e.Status = "fail"
			e.Detail = fmt.Sprintf("%+.1f%% > %.0f%% tolerance", delta, tolerance*100)
			ok = false
		}
		if nsTolerance > 0 && e.BaselineNs > 0 && cur.NsOp > e.BaselineNs*(1+nsTolerance) {
			e.Status = "fail"
			nsDetail := fmt.Sprintf("ns/op %+.1f%% > %.0f%% ns-tolerance", e.NsDeltaPct, nsTolerance*100)
			if e.Detail != "" {
				e.Detail += "; " + nsDetail
			} else {
				e.Detail = nsDetail
			}
			ok = false
		}
		entries = append(entries, e)
	}
	extras := make([]string, 0, len(current))
	for name := range current {
		if _, known := baseline[name]; !known {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		entries = append(entries, Entry{Result: current[name], Status: "note"})
	}
	return entries, ok
}

// render turns entries into the human verdict lines. The trailing ns/op
// delta, when baseline timing is available, is marked non-fatal unless the
// run opted into the -ns-tolerance gate.
func render(entries []Entry, tolerance, nsTolerance float64) []string {
	lines := make([]string, 0, len(entries))
	for _, e := range entries {
		ns := ""
		if e.BaselineNs > 0 && e.NsOp > 0 {
			if nsTolerance > 0 {
				ns = fmt.Sprintf("; %.0f ns/op vs baseline %.0f (%+.1f%%)",
					e.NsOp, e.BaselineNs, e.NsDeltaPct)
			} else {
				ns = fmt.Sprintf("; %.0f ns/op vs baseline %.0f (%+.1f%%, non-fatal)",
					e.NsOp, e.BaselineNs, e.NsDeltaPct)
			}
		}
		switch {
		case e.Status == "fail" && e.Detail == "in baseline but missing from input":
			lines = append(lines, fmt.Sprintf("FAIL %s: %s", e.Name, e.Detail))
		case e.Status == "fail":
			lines = append(lines, fmt.Sprintf("FAIL %s: %d allocs/op, baseline %d (%s)%s",
				e.Name, e.AllocsOp, e.BaselineAllocs, e.Detail, ns))
		case e.Status == "note":
			lines = append(lines, fmt.Sprintf("note %s: %d allocs/op, not in baseline", e.Name, e.AllocsOp))
		default:
			lines = append(lines, fmt.Sprintf("ok   %s: %d allocs/op, baseline %d (%+.1f%%)%s",
				e.Name, e.AllocsOp, e.BaselineAllocs, e.DeltaPct, ns))
		}
	}
	return lines
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.txt", "baseline benchmark output to compare against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op regression")
	nsTolerance := flag.Float64("ns-tolerance", 0, "opt-in fractional ns/op regression gate (0 = informational only; timing flakes on shared runners)")
	jsonOut := flag.Bool("json", false, "emit the verdict as one JSON object (ns/op and B/op included)")
	flag.Parse()

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := parse(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("no benchmark lines in baseline %s", *baselinePath))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input (run with -bench and -benchmem)"))
	}

	entries, ok := check(baseline, current, *tolerance, *nsTolerance)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{Tolerance: *tolerance, NsTolerance: *nsTolerance, Pass: ok, Benchmarks: entries}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(strings.Join(render(entries, *tolerance, *nsTolerance), "\n"))
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
