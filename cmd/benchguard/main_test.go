package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU
BenchmarkAnalyzeCampaign-8   	       3	 342105525 ns/op	84874053 B/op	  190633 allocs/op
BenchmarkEngineChain/hops=4-8 	   10000	      1042 ns/op	     512 B/op	       9 allocs/op
PASS
ok  	repro	2.5s
`

func TestParseStripsCPUSuffix(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkAnalyzeCampaign"] != 190633 {
		t.Errorf("campaign allocs = %d", got["BenchmarkAnalyzeCampaign"])
	}
	if got["BenchmarkEngineChain/hops=4"] != 9 {
		t.Errorf("sub-benchmark allocs = %d (map %v)", got["BenchmarkEngineChain/hops=4"], got)
	}
	if len(got) != 2 {
		t.Errorf("parsed %d entries, want 2: %v", len(got), got)
	}
}

func TestCheckWithinTolerancePasses(t *testing.T) {
	base := map[string]int64{"BenchmarkX": 1000}
	_, ok := check(base, map[string]int64{"BenchmarkX": 1099}, 0.10)
	if !ok {
		t.Error("9.9% regression failed under a 10% tolerance")
	}
	_, ok = check(base, map[string]int64{"BenchmarkX": 900}, 0.10)
	if !ok {
		t.Error("an improvement failed the guard")
	}
}

func TestCheckRegressionFails(t *testing.T) {
	base := map[string]int64{"BenchmarkX": 1000}
	lines, ok := check(base, map[string]int64{"BenchmarkX": 1101}, 0.10)
	if ok {
		t.Errorf("10.1%% regression passed: %v", lines)
	}
}

func TestCheckMissingBenchmarkFails(t *testing.T) {
	base := map[string]int64{"BenchmarkX": 1000, "BenchmarkY": 5}
	lines, ok := check(base, map[string]int64{"BenchmarkX": 1000}, 0.10)
	if ok {
		t.Errorf("missing baseline benchmark passed: %v", lines)
	}
}

func TestCheckUnknownBenchmarkIsNoted(t *testing.T) {
	base := map[string]int64{"BenchmarkX": 1000}
	lines, ok := check(base, map[string]int64{"BenchmarkX": 1000, "BenchmarkNew": 7}, 0.10)
	if !ok {
		t.Errorf("benchmark absent from baseline failed the run: %v", lines)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "BenchmarkNew") && strings.HasPrefix(l, "note") {
			found = true
		}
	}
	if !found {
		t.Errorf("new benchmark not noted: %v", lines)
	}
}
