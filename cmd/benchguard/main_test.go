package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU
BenchmarkAnalyzeCampaign-8   	       3	 342105525 ns/op	        28296 flows	84874053 B/op	  190633 allocs/op
BenchmarkEngineChain/hops=4-8 	   10000	      1042 ns/op	     512 B/op	       9 allocs/op
PASS
ok  	repro	2.5s
`

func mkResults(allocs map[string]int64) map[string]Result {
	out := make(map[string]Result, len(allocs))
	for n, a := range allocs {
		out[n] = Result{Name: n, AllocsOp: a}
	}
	return out
}

func TestParseStripsCPUSuffix(t *testing.T) {
	got, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	camp := got["BenchmarkAnalyzeCampaign"]
	if camp.AllocsOp != 190633 {
		t.Errorf("campaign allocs = %d", camp.AllocsOp)
	}
	if camp.NsOp != 342105525 || camp.BytesOp != 84874053 {
		t.Errorf("campaign ns/B = %v/%d, want 342105525/84874053", camp.NsOp, camp.BytesOp)
	}
	if camp.Metrics["flows"] != 28296 {
		t.Errorf("campaign metrics = %v, want the flows custom metric captured", camp.Metrics)
	}
	sub := got["BenchmarkEngineChain/hops=4"]
	if sub.AllocsOp != 9 || sub.NsOp != 1042 || sub.BytesOp != 512 || sub.Metrics != nil {
		t.Errorf("sub-benchmark = %+v", sub)
	}
	if len(got) != 2 {
		t.Errorf("parsed %d entries, want 2: %v", len(got), got)
	}
}

// TestParseCustomMetrics pins the token walk on a line with a rate metric
// between ns/op and the -benchmem columns (where b.ReportMetric puts it),
// and that lines without allocs/op are not treated as results.
func TestParseCustomMetrics(t *testing.T) {
	const out = `BenchmarkAnalyzeSkewed/steal-8-8   5   294217110 ns/op   2919787 events/s   84874053 B/op   190633 allocs/op
BenchmarkNoMem-8   100   1042 ns/op
PASS
`
	got, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d entries, want only the -benchmem line: %v", len(got), got)
	}
	r := got["BenchmarkAnalyzeSkewed/steal-8"]
	if r.Metrics["events/s"] != 2919787 || r.NsOp != 294217110 || r.AllocsOp != 190633 {
		t.Errorf("result = %+v", r)
	}
}

// TestMetricsInDeltaTable pins the rendered metric suffix: drift against the
// baseline where the unit matches, bare value where it doesn't, and no
// change to entries without metrics.
func TestMetricsInDeltaTable(t *testing.T) {
	base := map[string]Result{"BenchmarkX": {
		Name: "BenchmarkX", AllocsOp: 100, Metrics: map[string]float64{"events/s": 2000000},
	}}
	cur := map[string]Result{"BenchmarkX": {
		Name: "BenchmarkX", AllocsOp: 100, Metrics: map[string]float64{"events/s": 2500000, "flows": 42},
	}}
	entries, ok := check(base, cur, 0.10, 0)
	if !ok {
		t.Fatalf("flat allocs failed: %v", render(entries, 0.10, 0))
	}
	lines := render(entries, 0.10, 0)
	want := "ok   BenchmarkX: 100 allocs/op, baseline 100 (+0.0%); 2500000 events/s vs baseline 2000000 (+25.0%); 42 flows"
	if len(lines) != 1 || lines[0] != want {
		t.Errorf("line = %q, want %q", lines, want)
	}
}

func TestCheckWithinTolerancePasses(t *testing.T) {
	base := mkResults(map[string]int64{"BenchmarkX": 1000})
	_, ok := check(base, mkResults(map[string]int64{"BenchmarkX": 1099}), 0.10, 0)
	if !ok {
		t.Error("9.9% regression failed under a 10% tolerance")
	}
	_, ok = check(base, mkResults(map[string]int64{"BenchmarkX": 900}), 0.10, 0)
	if !ok {
		t.Error("an improvement failed the guard")
	}
}

func TestCheckRegressionFails(t *testing.T) {
	base := mkResults(map[string]int64{"BenchmarkX": 1000})
	entries, ok := check(base, mkResults(map[string]int64{"BenchmarkX": 1101}), 0.10, 0)
	if ok {
		t.Errorf("10.1%% regression passed: %v", render(entries, 0.10, 0))
	}
}

func TestCheckMissingBenchmarkFails(t *testing.T) {
	base := mkResults(map[string]int64{"BenchmarkX": 1000, "BenchmarkY": 5})
	entries, ok := check(base, mkResults(map[string]int64{"BenchmarkX": 1000}), 0.10, 0)
	if ok {
		t.Errorf("missing baseline benchmark passed: %v", render(entries, 0.10, 0))
	}
}

func TestCheckUnknownBenchmarkIsNoted(t *testing.T) {
	base := mkResults(map[string]int64{"BenchmarkX": 1000})
	entries, ok := check(base, mkResults(map[string]int64{"BenchmarkX": 1000, "BenchmarkNew": 7}), 0.10, 0)
	if !ok {
		t.Errorf("benchmark absent from baseline failed the run: %v", render(entries, 0.10, 0))
	}
	found := false
	for _, l := range render(entries, 0.10, 0) {
		if strings.Contains(l, "BenchmarkNew") && strings.HasPrefix(l, "note") {
			found = true
		}
	}
	if !found {
		t.Errorf("new benchmark not noted: %v", render(entries, 0.10, 0))
	}
}

// TestNsDeltaIsInformational pins the ns/op delta behavior: it is computed
// and rendered when both sides carry timing, but a huge wall-time regression
// alone never fails the run.
func TestNsDeltaIsInformational(t *testing.T) {
	base := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1000, AllocsOp: 100}}
	cur := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsOp: 3000, AllocsOp: 100}}
	entries, ok := check(base, cur, 0.10, 0)
	if !ok {
		t.Fatalf("3x ns/op regression with flat allocs failed the guard: %v", render(entries, 0.10, 0))
	}
	if len(entries) != 1 || entries[0].BaselineNs != 1000 || entries[0].NsDeltaPct != 200 {
		t.Fatalf("entry = %+v, want baseline ns 1000 and +200%% delta", entries[0])
	}
	lines := render(entries, 0.10, 0)
	want := "ok   BenchmarkX: 100 allocs/op, baseline 100 (+0.0%); 3000 ns/op vs baseline 1000 (+200.0%, non-fatal)"
	if len(lines) != 1 || lines[0] != want {
		t.Errorf("line = %q, want %q", lines, want)
	}
	// Entries without timing on either side keep the bare line.
	bare, _ := check(mkResults(map[string]int64{"BenchmarkY": 5}), mkResults(map[string]int64{"BenchmarkY": 5}), 0.10, 0)
	if l := render(bare, 0.10, 0); len(l) != 1 || strings.Contains(l[0], "ns/op") {
		t.Errorf("timing-less entry rendered a ns delta: %q", l)
	}
}

// TestNsToleranceGate pins the opt-in wall-time gate: with -ns-tolerance a
// ns/op regression beyond the fraction fails the run even when allocs are
// flat, within-tolerance drift still passes, and the rendered line drops the
// "non-fatal" marker.
func TestNsToleranceGate(t *testing.T) {
	base := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1000, AllocsOp: 100}}

	slow := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1600, AllocsOp: 100}}
	entries, ok := check(base, slow, 0.10, 0.50)
	if ok {
		t.Fatalf("+60%% ns/op passed a 50%% ns-tolerance: %v", render(entries, 0.10, 0.50))
	}
	if e := entries[0]; e.Status != "fail" || !strings.Contains(e.Detail, "ns-tolerance") {
		t.Errorf("entry = %+v, want a ns-tolerance fail", e)
	}
	if l := render(entries, 0.10, 0.50); strings.Contains(l[0], "non-fatal") {
		t.Errorf("gated render still says non-fatal: %q", l[0])
	}

	drift := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1400, AllocsOp: 100}}
	if _, ok := check(base, drift, 0.10, 0.50); !ok {
		t.Error("+40% ns/op failed under a 50% ns-tolerance")
	}

	// Both gates tripping report both reasons.
	worse := map[string]Result{"BenchmarkX": {Name: "BenchmarkX", NsOp: 1600, AllocsOp: 200}}
	entries, ok = check(base, worse, 0.10, 0.50)
	if ok {
		t.Fatal("double regression passed")
	}
	if d := entries[0].Detail; !strings.Contains(d, "tolerance") || !strings.Contains(d, "ns-tolerance") {
		t.Errorf("detail %q does not report both gates", d)
	}

	// Default (0) keeps timing informational — the pre-gate behavior.
	if _, ok := check(base, slow, 0.10, 0); !ok {
		t.Error("ns regression failed the run with the gate off")
	}
}

// TestCheckEntriesRoundTripJSON pins the -json document shape: every entry
// carries the measurements and a status, and the report marshals cleanly.
func TestCheckEntriesRoundTripJSON(t *testing.T) {
	base := mkResults(map[string]int64{"BenchmarkX": 1000, "BenchmarkGone": 3})
	cur := map[string]Result{
		"BenchmarkX":   {Name: "BenchmarkX", NsOp: 1.5e6, BytesOp: 4096, AllocsOp: 950},
		"BenchmarkNew": {Name: "BenchmarkNew", NsOp: 10, BytesOp: 0, AllocsOp: 0},
	}
	entries, ok := check(base, cur, 0.10, 0)
	if ok {
		t.Fatal("missing BenchmarkGone must fail the run")
	}
	raw, err := json.Marshal(report{Tolerance: 0.10, Pass: ok, Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Pass || back.Tolerance != 0.10 || len(back.Benchmarks) != 3 {
		t.Fatalf("round-tripped report = %+v", back)
	}
	byName := map[string]Entry{}
	for _, e := range back.Benchmarks {
		byName[e.Name] = e
	}
	if e := byName["BenchmarkX"]; e.Status != "ok" || e.BaselineAllocs != 1000 || e.AllocsOp != 950 || e.NsOp != 1.5e6 {
		t.Errorf("BenchmarkX entry = %+v", e)
	}
	if e := byName["BenchmarkGone"]; e.Status != "fail" || e.Detail == "" {
		t.Errorf("BenchmarkGone entry = %+v", e)
	}
	if e := byName["BenchmarkNew"]; e.Status != "note" {
		t.Errorf("BenchmarkNew entry = %+v", e)
	}
}

// TestRenderFormatsUnchanged keeps the human verdict lines in the shape CI
// logs have always shown.
func TestRenderFormatsUnchanged(t *testing.T) {
	base := mkResults(map[string]int64{"BenchmarkA": 100, "BenchmarkB": 10})
	cur := mkResults(map[string]int64{"BenchmarkA": 200, "BenchmarkC": 1})
	entries, _ := check(base, cur, 0.10, 0)
	lines := render(entries, 0.10, 0)
	want := []string{
		"FAIL BenchmarkA: 200 allocs/op, baseline 100 (+100.0% > 10% tolerance)",
		"FAIL BenchmarkB: in baseline but missing from input",
		"note BenchmarkC: 1 allocs/op, not in baseline",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}
