// Command refill runs the REFILL pipeline over a collected log file:
// it reconstructs per-packet event flows from the lossy, unsynchronized
// per-node logs, prints the diagnosis report, and optionally scores the
// reconstruction against simulator ground truth or prints a single packet's
// trace / event flow.
//
// Usage:
//
//	refill -logs logs.txt -sink 1 [-truth truth.txt] [-trace 17:42] [-flows 3]
//	refill -from-snapshot logs.snap -sink 1
//	refill convert -in logs.txt -out logs.snap
//
// A columnar snapshot (-from-snapshot, or the convert subcommand's default
// output) is a page-aligned image of the in-memory collection: analysis runs
// directly over the memory-mapped file with no parse step and no per-event
// allocations, which is the fastest way to re-analyze a large campaign.
// -from-snapshot analyzes out of core by default — windowed reconstruction
// straight off the mapping, so snapshots larger than memory work; tune the
// residency window with -window-rows, or pass -stream to load the mapping
// through the streaming pipeline instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sim/network"

	refill "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		runConvert(os.Args[2:])
		return
	}
	var (
		logsPath  = flag.String("logs", "", "input log file (required unless -from-snapshot)")
		fromSnap  = flag.String("from-snapshot", "", "read the collection from a columnar snapshot file instead of -logs")
		writeSnap = flag.String("snapshot", "", "also write the input collection to this columnar snapshot file")
		sinkID    = flag.Uint("sink", 1, "sink node id")
		truthPath = flag.String("truth", "", "optional ground-truth fate file to score against")
		tracePkt  = flag.String("trace", "", "print the trace of one packet (origin:seq)")
		showFlows = flag.Int("flows", 0, "print the first N reconstructed event flows")
		days      = flag.Int("days", 30, "campaign length in days (bounds open outage windows)")
		binFormat = flag.Bool("binary", false, "input is the compact binary log format")
		clocks    = flag.Bool("clocks", false, "recover per-node clock offsets from the flows")
		workers   = flag.Int("workers", 0, "reconstruction workers (0 serial, -1 all cores)")
		stream    = flag.Bool("stream", false, "overlap partitioning with reconstruction (implies parallel workers)")
		winRows   = flag.Int("window-rows", 0, "residency window size in rows for the out-of-core -from-snapshot path (0 = default)")
		twoPass   = flag.Bool("two-pass", false, "diagnose in a separate pass after reconstruction (legacy pipeline; output is identical)")
		interp    = flag.Bool("interpreted", false, "run the interpreted engine walk instead of the compiled kernels (reference path; output is identical)")
		prof      profiling.Flags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()
	if (*logsPath == "") == (*fromSnap == "") {
		fmt.Fprintln(os.Stderr, "refill: exactly one of -logs and -from-snapshot is required")
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(prof)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	var logs *refill.Collection
	var snap *refill.Snapshot
	if *fromSnap != "" {
		snap, err = refill.OpenSnapshot(*fromSnap)
		if err != nil {
			fatal(err)
		}
		// The collection's columns alias the mapping, so the snapshot
		// stays open for the life of the process.
		defer snap.Close()
		logs = snap.Collection()
	} else {
		f, err := os.Open(*logsPath)
		if err != nil {
			fatal(err)
		}
		readLogs := refill.ReadLogs
		if *binFormat {
			readLogs = refill.ReadLogsBinary
		}
		logs, err = readLogs(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *writeSnap != "" {
		if err := refill.WriteSnapshot(*writeSnap, logs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote snapshot %s (%d events)\n", *writeSnap, logs.TotalEvents())
	}
	opts := []refill.AnalyzerOption{
		refill.WithParallelism(*workers),
		refill.WithDailyBins(int64(sim.Day), *days),
	}
	if *twoPass {
		opts = append(opts, refill.WithSeparateDiagnosis())
	}
	if *interp {
		opts = append(opts, refill.WithInterpretedEngine())
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{
		Sink: refill.NodeID(*sinkID),
		End:  int64(*days) * int64(sim.Day),
	}, opts...)
	if err != nil {
		fatal(err)
	}
	var out *refill.Output
	switch {
	case *stream:
		out = an.AnalyzeStream(logs)
	case snap != nil:
		// Out-of-core by default off a snapshot: windowed reconstruction
		// straight off the mapping keeps the working set to ~two residency
		// windows, so snapshots larger than memory analyze fine. Flows are
		// retained (the -flows/-trace/-clocks printing below reads them).
		out = an.AnalyzeSnapshot(snap, refill.SnapshotOptions{WindowRows: *winRows})
	default:
		out = an.Analyze(logs)
	}

	fmt.Printf("analyzed %d events across %d node logs -> %d packet flows\n",
		logs.TotalEvents(), len(logs.Logs), len(out.Result.Flows))
	inferred, anomalies := 0, 0
	for _, fl := range out.Result.Flows {
		inferred += fl.InferredCount()
		anomalies += len(fl.Anomalies)
	}
	fmt.Printf("inferred %d lost events; %d anomalous records discarded\n\n", inferred, anomalies)
	fmt.Println(refill.RenderBreakdown(out.Report))

	if *showFlows > 0 {
		fmt.Println("sample event flows:")
		for i, fl := range out.Result.Flows {
			if i >= *showFlows {
				break
			}
			fmt.Printf("  %s: %s\n", fl.Packet, fl)
		}
		fmt.Println()
	}
	if *tracePkt != "" {
		pid, err := parsePacket(*tracePkt)
		if err != nil {
			fatal(err)
		}
		fl := out.Flow(pid)
		if fl == nil {
			fmt.Printf("packet %s: no events in the logs\n", pid)
		} else {
			fmt.Printf("event flow: %s\n", fl)
			fmt.Print(refill.BuildTrace(fl))
		}
	}
	if *clocks {
		cm := refill.RecoverClocks(out.Result.Flows, refill.Server)
		fmt.Printf("recovered clocks for %d nodes from %d cross-node pairs; worst offsets:\n",
			len(cm.Nodes), cm.Pairs)
		printed := 0
		for _, n := range logs.Nodes() {
			p, ok := cm.Offset(n)
			if !ok || n == refill.Server {
				continue
			}
			if p.Offset > 10e6 || p.Offset < -10e6 {
				fmt.Printf("  node %-6s offset %+.1fs drift %+.1fppm\n",
					n, p.Offset/1e6, p.Drift*1e6)
				printed++
			}
			if printed >= 10 {
				break
			}
		}
		fmt.Println()
	}
	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			fatal(err)
		}
		fates, err := network.ReadFates(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		acc := refill.Score(out.Report, fates)
		fmt.Println("accuracy vs ground truth:")
		fmt.Print(report.AccuracyTable([]report.AccuracyRow{{Name: "refill", Acc: acc}}))
	}
}

// runConvert is the convert subcommand: re-encode a collection between the
// text, binary and snapshot formats without analyzing it.
func runConvert(args []string) {
	fs := flag.NewFlagSet("refill convert", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "input file (required)")
		out       = fs.String("out", "", "output file (required)")
		inFormat  = fs.String("in-format", "text", "input format: text, binary or snapshot")
		outFormat = fs.String("out-format", "snapshot", "output format: snapshot, binary or text")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "refill convert: -in and -out are required")
		fs.Usage()
		os.Exit(2)
	}

	var logs *refill.Collection
	switch *inFormat {
	case "snapshot":
		snap, err := refill.OpenSnapshot(*in)
		if err != nil {
			fatal(err)
		}
		// Output encoders read straight out of the mapping; close only
		// after the write below completes.
		defer snap.Close()
		logs = snap.Collection()
	case "text", "binary":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		read := refill.ReadLogs
		if *inFormat == "binary" {
			read = refill.ReadLogsBinary
		}
		logs, err = read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("convert: unknown -in-format %q", *inFormat))
	}

	switch *outFormat {
	case "snapshot":
		if err := refill.WriteSnapshot(*out, logs); err != nil {
			fatal(err)
		}
	case "text", "binary":
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		write := refill.WriteLogs
		if *outFormat == "binary" {
			write = refill.WriteLogsBinary
		}
		err = write(f, logs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("convert: unknown -out-format %q", *outFormat))
	}
	fmt.Printf("converted %d events across %d node logs: %s (%s) -> %s (%s)\n",
		logs.TotalEvents(), len(logs.Logs), *in, *inFormat, *out, *outFormat)
}

func parsePacket(s string) (refill.PacketID, error) {
	var pid refill.PacketID
	var origin, seq uint32
	if _, err := fmt.Sscanf(s, "%d:%d", &origin, &seq); err != nil {
		return pid, fmt.Errorf("bad packet id %q (want origin:seq)", s)
	}
	pid.Origin = refill.NodeID(origin)
	pid.Seq = seq
	return pid, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refill:", err)
	os.Exit(1)
}
