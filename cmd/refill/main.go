// Command refill runs the REFILL pipeline over a collected log file:
// it reconstructs per-packet event flows from the lossy, unsynchronized
// per-node logs, prints the diagnosis report, and optionally scores the
// reconstruction against simulator ground truth or prints a single packet's
// trace / event flow.
//
// Usage:
//
//	refill -logs logs.txt -sink 1 [-truth truth.txt] [-trace 17:42] [-flows 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sim/network"

	refill "repro"
)

func main() {
	var (
		logsPath  = flag.String("logs", "", "input log file (required)")
		sinkID    = flag.Uint("sink", 1, "sink node id")
		truthPath = flag.String("truth", "", "optional ground-truth fate file to score against")
		tracePkt  = flag.String("trace", "", "print the trace of one packet (origin:seq)")
		showFlows = flag.Int("flows", 0, "print the first N reconstructed event flows")
		days      = flag.Int("days", 30, "campaign length in days (bounds open outage windows)")
		binFormat = flag.Bool("binary", false, "input is the compact binary log format")
		clocks    = flag.Bool("clocks", false, "recover per-node clock offsets from the flows")
		workers   = flag.Int("workers", 0, "reconstruction workers (0 serial, -1 all cores)")
		stream    = flag.Bool("stream", false, "overlap partitioning with reconstruction (implies parallel workers)")
		twoPass   = flag.Bool("two-pass", false, "diagnose in a separate pass after reconstruction (legacy pipeline; output is identical)")
		interp    = flag.Bool("interpreted", false, "run the interpreted engine walk instead of the compiled kernels (reference path; output is identical)")
		prof      profiling.Flags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()
	if *logsPath == "" {
		fmt.Fprintln(os.Stderr, "refill: -logs is required")
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := profiling.Start(prof)
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	f, err := os.Open(*logsPath)
	if err != nil {
		fatal(err)
	}
	readLogs := refill.ReadLogs
	if *binFormat {
		readLogs = refill.ReadLogsBinary
	}
	logs, err := readLogs(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	opts := []refill.AnalyzerOption{
		refill.WithParallelism(*workers),
		refill.WithDailyBins(int64(sim.Day), *days),
	}
	if *twoPass {
		opts = append(opts, refill.WithSeparateDiagnosis())
	}
	if *interp {
		opts = append(opts, refill.WithInterpretedEngine())
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{
		Sink: refill.NodeID(*sinkID),
		End:  int64(*days) * int64(sim.Day),
	}, opts...)
	if err != nil {
		fatal(err)
	}
	var out *refill.Output
	if *stream {
		out = an.AnalyzeStream(logs)
	} else {
		out = an.Analyze(logs)
	}

	fmt.Printf("analyzed %d events across %d node logs -> %d packet flows\n",
		logs.TotalEvents(), len(logs.Logs), len(out.Result.Flows))
	inferred, anomalies := 0, 0
	for _, fl := range out.Result.Flows {
		inferred += fl.InferredCount()
		anomalies += len(fl.Anomalies)
	}
	fmt.Printf("inferred %d lost events; %d anomalous records discarded\n\n", inferred, anomalies)
	fmt.Println(refill.RenderBreakdown(out.Report))

	if *showFlows > 0 {
		fmt.Println("sample event flows:")
		for i, fl := range out.Result.Flows {
			if i >= *showFlows {
				break
			}
			fmt.Printf("  %s: %s\n", fl.Packet, fl)
		}
		fmt.Println()
	}
	if *tracePkt != "" {
		pid, err := parsePacket(*tracePkt)
		if err != nil {
			fatal(err)
		}
		fl := out.Flow(pid)
		if fl == nil {
			fmt.Printf("packet %s: no events in the logs\n", pid)
		} else {
			fmt.Printf("event flow: %s\n", fl)
			fmt.Print(refill.BuildTrace(fl))
		}
	}
	if *clocks {
		cm := refill.RecoverClocks(out.Result.Flows, refill.Server)
		fmt.Printf("recovered clocks for %d nodes from %d cross-node pairs; worst offsets:\n",
			len(cm.Nodes), cm.Pairs)
		printed := 0
		for _, n := range logs.Nodes() {
			p, ok := cm.Offset(n)
			if !ok || n == refill.Server {
				continue
			}
			if p.Offset > 10e6 || p.Offset < -10e6 {
				fmt.Printf("  node %-6s offset %+.1fs drift %+.1fppm\n",
					n, p.Offset/1e6, p.Drift*1e6)
				printed++
			}
			if printed >= 10 {
				break
			}
		}
		fmt.Println()
	}
	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			fatal(err)
		}
		fates, err := network.ReadFates(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		acc := refill.Score(out.Report, fates)
		fmt.Println("accuracy vs ground truth:")
		fmt.Print(report.AccuracyTable([]report.AccuracyRow{{Name: "refill", Acc: acc}}))
	}
}

func parsePacket(s string) (refill.PacketID, error) {
	var pid refill.PacketID
	var origin, seq uint32
	if _, err := fmt.Sscanf(s, "%d:%d", &origin, &seq); err != nil {
		return pid, fmt.Errorf("bad packet id %q (want origin:seq)", s)
	}
	pid.Origin = refill.NodeID(origin)
	pid.Seq = seq
	return pid, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "refill:", err)
	os.Exit(1)
}
