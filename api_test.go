package refill

// Facade-level tests: everything a downstream user touches, exercised through
// the public API only.

import (
	"bytes"
	"strings"
	"testing"
)

// mkEvent builds one log record through the public types.
func mkEvent(t EventType, s, r NodeID, pkt PacketID) Event {
	node := r
	if t.SenderSide() || t.NodeLocal() {
		node = s
	}
	return Event{Node: node, Type: t, Sender: s, Receiver: r, Packet: pkt}
}

func TestPublicTableIICase1(t *testing.T) {
	pkt := PacketID{Origin: 1, Seq: 1}
	logs := NewCollection()
	logs.Add(mkEvent(Trans, 1, 2, pkt))
	logs.Add(mkEvent(Recv, 2, 3, pkt))
	an, err := NewAnalyzer(AnalyzerOptions{Sink: 100, Protocol: TableIIProtocol()})
	if err != nil {
		t.Fatal(err)
	}
	out := an.Analyze(logs)
	if len(out.Result.Flows) != 1 {
		t.Fatalf("flows = %d", len(out.Result.Flows))
	}
	want := "1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv"
	if got := out.Result.Flows[0].String(); got != want {
		t.Errorf("flow = %s", got)
	}
}

func TestPublicLogRoundTrip(t *testing.T) {
	pkt := PacketID{Origin: 3, Seq: 9}
	logs := NewCollection()
	logs.Add(mkEvent(Gen, 3, NoNode, pkt))
	logs.Add(mkEvent(Trans, 3, 4, pkt))
	var buf bytes.Buffer
	if err := WriteLogs(&buf, logs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalEvents() != 2 {
		t.Errorf("round trip lost events: %d", back.TotalEvents())
	}
}

func TestPublicCampaignPipeline(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(5))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		t.Fatal(err)
	}
	out := an.Analyze(camp.Logs)
	acc := Score(out.Report, camp.Truth.Fates)
	if acc.Coverage() < 0.9 {
		t.Errorf("coverage = %v", acc.Coverage())
	}
	// Rendering helpers produce non-empty output.
	if RenderBreakdown(out.Report) == "" {
		t.Error("breakdown empty")
	}
	if RenderDaily(out.Report, int64(camp.Duration)/2, 2) == "" {
		t.Error("daily empty")
	}
	if s := RenderAccuracy([]AccuracyRow{{Name: "refill", Acc: acc}}); !strings.Contains(s, "refill") {
		t.Error("accuracy table missing row")
	}
	// Traces and classification work through the facade.
	traces := BuildTraces(out.Result.Flows)
	if len(traces) != len(out.Result.Flows) {
		t.Error("trace count mismatch")
	}
	f := out.Result.Flows[0]
	_ = Classify(f)
	if BuildTrace(f).PathString() == "" {
		t.Error("empty path")
	}
}

func TestPublicBaselines(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(6))
	if err != nil {
		t.Fatal(err)
	}
	lost := SinkView(camp.Logs, int64(camp.Config.Period))
	if len(lost) == 0 {
		t.Fatal("sink view found nothing")
	}
	naive := NaiveAnalyze(camp.Logs)
	clock := ClockMergeAnalyze(camp.Logs)
	tc := TimeCorrAnalyze(camp.Logs, lost, 3_600_000_000)
	if len(naive) == 0 || len(clock) == 0 || len(tc) == 0 {
		t.Error("baselines returned nothing")
	}
	wit := WitMergeability(camp.Logs)
	if wit.MergeableRate() != 0 {
		t.Errorf("local logs should have no common events, rate=%v", wit.MergeableRate())
	}
	// Baseline verdicts are scoreable.
	j := make(map[PacketID]Judgment, len(naive))
	for id, v := range naive {
		j[id] = Judgment{Cause: v.Cause, Position: v.Position}
	}
	acc := ScoreJudgments(j, camp.Truth.Fates)
	if acc.Compared == 0 {
		t.Error("nothing scored")
	}
}

func TestPublicEngineParallel(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(7))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineOptions{Sink: camp.Sink})
	if err != nil {
		t.Fatal(err)
	}
	serial := eng.Analyze(camp.Logs)
	parallel := eng.AnalyzeParallel(camp.Logs, 4)
	if len(serial.Flows) != len(parallel.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(serial.Flows), len(parallel.Flows))
	}
	for i := range serial.Flows {
		if serial.Flows[i].String() != parallel.Flows[i].String() {
			t.Fatal("parallel analysis diverged from serial")
		}
	}
}

func TestPublicLoggingPolicies(t *testing.T) {
	for _, p := range []LogPolicy{FullLogging(), SelectiveLogging(),
		SampledLogging(0.5, 1), ReceiverSideLogging()} {
		if p.Name() == "" {
			t.Error("policy without a name")
		}
	}
	coll := NewLogCollector(LogCollectorConfig{Seed: 1}).WithPolicy(SelectiveLogging())
	pkt := PacketID{Origin: 1, Seq: 1}
	coll.Record(mkEvent(Trans, 1, 2, pkt))
	coll.Record(mkEvent(Trans, 1, 2, pkt))
	if coll.Collection().TotalEvents() != 1 {
		t.Errorf("selective policy kept %d, want 1", coll.Collection().TotalEvents())
	}
}

func TestPublicExtendedProtocol(t *testing.T) {
	cfg := TinyCampaign(8)
	cfg.QueueEvents = true
	camp, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration),
		Protocol: ExtendedCTP()})
	if err != nil {
		t.Fatal(err)
	}
	out := an.Analyze(camp.Logs)
	acc := Score(out.Report, camp.Truth.Fates)
	if acc.CauseRate() < 0.4 {
		t.Errorf("extended-protocol cause rate = %v", acc.CauseRate())
	}
}

func TestPublicCausesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, c := range Causes() {
		names[c.String()] = true
	}
	for _, want := range []string{"delivered", "received", "acked", "timeout",
		"dup", "overflow", "transit", "outage", "unknown"} {
		if !names[want] {
			t.Errorf("missing cause %q", want)
		}
	}
}

// reportFingerprint renders an output to a comparable string: flows in order
// plus the full breakdown table.
func reportFingerprint(out *Output) string {
	var sb strings.Builder
	for _, f := range out.Result.Flows {
		sb.WriteString(f.Packet.String())
		sb.WriteByte('\t')
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	sb.WriteString(RenderBreakdown(out.Report))
	return sb.String()
}

func TestPublicFunctionalOptions(t *testing.T) {
	pkt := PacketID{Origin: 1, Seq: 1}
	logs := NewCollection()
	logs.Add(mkEvent(Trans, 1, 2, pkt))
	logs.Add(mkEvent(Recv, 2, 3, pkt))
	// WithProtocol must act like setting Protocol in the struct.
	an, err := NewAnalyzer(AnalyzerOptions{Sink: 100}, WithProtocol(TableIIProtocol()))
	if err != nil {
		t.Fatal(err)
	}
	out := an.Analyze(logs)
	want := "1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv"
	if got := out.Result.Flows[0].String(); got != want {
		t.Errorf("WithProtocol flow = %s", got)
	}
	// WithEngineOptions imports the same configuration from an engine
	// options value; zero Sink must not clobber the struct's.
	an2, err := NewAnalyzer(AnalyzerOptions{Sink: 100},
		WithEngineOptions(EngineOptions{Protocol: TableIIProtocol()}))
	if err != nil {
		t.Fatal(err)
	}
	if got := an2.Analyze(logs).Result.Flows[0].String(); got != want {
		t.Errorf("WithEngineOptions flow = %s", got)
	}
	// Options apply in order: the last protocol wins.
	an3, err := NewAnalyzer(AnalyzerOptions{Sink: 100},
		WithProtocol(DefaultCTP()), WithProtocol(TableIIProtocol()))
	if err != nil {
		t.Fatal(err)
	}
	if got := an3.Analyze(logs).Result.Flows[0].String(); got != want {
		t.Errorf("ordered options flow = %s", got)
	}
	// The zero Sink is still rejected, options or not.
	if _, err := NewAnalyzer(AnalyzerOptions{}, WithProtocol(DefaultCTP())); err == nil {
		t.Error("NewAnalyzer accepted the zero Sink")
	}
}

func TestPublicParallelismAndStreamIdentical(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(9))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		t.Fatal(err)
	}
	want := reportFingerprint(base.Analyze(camp.Logs))
	for _, workers := range []int{-1, 1, 4} {
		an, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)},
			WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := reportFingerprint(an.Analyze(camp.Logs)); got != want {
			t.Fatalf("Parallelism=%d diverged from serial", workers)
		}
		if got := reportFingerprint(an.AnalyzeStream(camp.Logs)); got != want {
			t.Fatalf("AnalyzeStream with Parallelism=%d diverged from serial", workers)
		}
	}
	if got := reportFingerprint(base.AnalyzeStream(camp.Logs)); got != want {
		t.Fatal("AnalyzeStream with default options diverged from serial")
	}
	// The deprecated package-level wrapper must keep forwarding verbatim.
	if got := reportFingerprint(AnalyzeStream(base, camp.Logs)); got != want {
		t.Fatal("deprecated package-level AnalyzeStream diverged from the method")
	}
}

func TestPublicRecoverClocksWith(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(5))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		t.Fatal(err)
	}
	out := an.Analyze(camp.Logs)
	def := RecoverClocks(out.Result.Flows, Server)
	same := RecoverClocksWith(out.Result.Flows, Server, RecoverClocksOpts{})
	viaOpts := RecoverClocks(out.Result.Flows, Server, WithClockSweeps(10))
	if len(viaOpts.Nodes) != len(def.Nodes) || viaOpts.Pairs != def.Pairs {
		t.Fatal("variadic options diverged from defaults")
	}
	if len(def.Nodes) != len(same.Nodes) || def.Pairs != same.Pairs {
		t.Fatal("zero options diverged from RecoverClocks")
	}
	for n, p := range def.Nodes {
		if same.Nodes[n] != p {
			t.Fatalf("node %v params diverged under zero options", n)
		}
	}
	// An absurd threshold drops every non-anchor node into Unanchored.
	strict := RecoverClocks(out.Result.Flows, Server, WithClockMinPairings(1<<30))
	if len(strict.Unanchored) == 0 {
		t.Error("MinPairings threshold dropped nothing")
	}
	for _, n := range strict.Unanchored {
		if _, ok := strict.Nodes[n]; ok {
			t.Errorf("dropped node %v still has an estimate", n)
		}
	}
}
