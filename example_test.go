package refill_test

// Godoc examples: runnable documentation for the public API. Each Output
// comment is verified by `go test`.

import (
	"fmt"

	refill "repro"
)

// tableIIEvent builds one Table II log record.
func tableIIEvent(t refill.EventType, sender, receiver refill.NodeID) refill.Event {
	node := receiver
	if t.SenderSide() || t.NodeLocal() {
		node = sender
	}
	return refill.Event{Node: node, Type: t, Sender: sender, Receiver: receiver,
		Packet: refill.PacketID{Origin: 1, Seq: 1}}
}

// ExampleAnalyzer reconstructs the paper's Table II Case 1: node 2's log is
// lost entirely, and REFILL infers the two missing events (bracketed) from
// node 3's reception.
func ExampleAnalyzer() {
	logs := refill.NewCollection()
	logs.Add(tableIIEvent(refill.Trans, 1, 2))
	logs.Add(tableIIEvent(refill.Recv, 2, 3))

	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{
		Sink:     100,
		Protocol: refill.TableIIProtocol(),
	})
	if err != nil {
		panic(err)
	}
	out := an.Analyze(logs)
	fmt.Println(out.Result.Flows[0])
	// Output: 1-2 trans, [1-2 recv], [2-3 trans], 2-3 recv
}

// ExampleClassify diagnoses Table II Case 2: the sender holds an ACK but the
// receiver never logged the reception — the paper's "acked loss".
func ExampleClassify() {
	logs := refill.NewCollection()
	logs.Add(tableIIEvent(refill.Trans, 1, 2))
	logs.Add(tableIIEvent(refill.AckRecvd, 1, 2))

	an, _ := refill.NewAnalyzer(refill.AnalyzerOptions{
		Sink:     100,
		Protocol: refill.TableIIProtocol(),
	})
	out := an.Analyze(logs)
	verdict := refill.Classify(out.Result.Flows[0])
	fmt.Printf("%s loss at node %s\n", verdict.Cause, verdict.Position)
	// Output: acked loss at node 2
}

// ExampleBuildTrace prints the per-packet trace of a delivered packet.
func ExampleBuildTrace() {
	pkt := refill.PacketID{Origin: 1, Seq: 1}
	logs := refill.NewCollection()
	logs.Add(refill.Event{Node: 1, Type: refill.Gen, Sender: 1, Packet: pkt})
	logs.Add(refill.Event{Node: 1, Type: refill.Trans, Sender: 1, Receiver: 2, Packet: pkt})
	logs.Add(refill.Event{Node: 2, Type: refill.Recv, Sender: 1, Receiver: 2, Packet: pkt})
	logs.Add(refill.Event{Node: 1, Type: refill.AckRecvd, Sender: 1, Receiver: 2, Packet: pkt})
	logs.Add(refill.Event{Node: refill.Server, Type: refill.ServerRecv, Sender: 2,
		Receiver: refill.Server, Packet: pkt})

	an, _ := refill.NewAnalyzer(refill.AnalyzerOptions{Sink: 2})
	out := an.Analyze(logs)
	tr := refill.BuildTrace(out.Result.Flows[0])
	fmt.Println(tr.PathString())
	// Output: 1 -> 2 -> server
}

// ExampleDisseminationProtocol shows the Figure 3(a) cascade on the
// negotiation protocol: a single surviving `done` record reconstructs the
// seeder's broadcast and both members' receptions and responses.
func ExampleDisseminationProtocol() {
	pkt := refill.PacketID{Origin: 2, Seq: 1}
	logs := refill.NewCollection()
	logs.Add(refill.Event{Node: 2, Type: refill.Done, Sender: 2, Packet: pkt})

	eng, err := refill.NewEngine(refill.EngineOptions{
		Protocol: refill.DisseminationProtocol(),
		Sink:     100,
		Group:    []refill.NodeID{1, 2, 3},
	})
	if err != nil {
		panic(err)
	}
	res := eng.Analyze(logs)
	fmt.Println(res.Flows[0])
	// Output: [2 bcast], [2-1 recv], [1-2 resp], [2-3 recv], [3-2 resp], 2 done
}
