// Package refill is a reproduction of "Connecting the Dots: Reconstructing
// Network Behavior with Individual and Lossy Logs" (ICPP 2015).
//
// REFILL takes per-node event logs that are lossy and unsynchronized —
// the only kind a real distributed deployment yields — and reconstructs
// per-packet event flows: the ordering of every event the packet caused
// across the network, with events missing from the logs inferred from
// protocol semantics. On top of the flows it derives diagnosis products:
// packet traces, loss positions, and loss causes.
//
// The package is a facade over the internal layers:
//
//   - event model and log encoding (internal/event)
//   - FSM inference engines with intra-node and inter-node transitions
//     (internal/fsm, internal/engine)
//   - event flows and per-packet tracing (internal/flow, internal/trace)
//   - loss diagnosis and figure-level aggregation (internal/diagnosis)
//   - baseline analyzers the paper compares against (internal/baseline)
//   - a CitySee-like WSN simulator used as the evaluation substrate
//     (internal/sim/..., internal/logging, internal/workload)
//
// # Quick start: one-shot analysis
//
//	logs, _ := refill.ReadLogs(file)
//	an, _ := refill.NewAnalyzer(refill.AnalyzerOptions{}, refill.WithSink(1))
//	out := an.Analyze(logs)
//	for _, f := range out.Result.Flows {
//		fmt.Println(f)                         // "1-2 trans, [1-2 recv], ..."
//		fmt.Println(refill.BuildTrace(f))      // per-packet trace
//	}
//	fmt.Println(refill.RenderBreakdown(out.Report))
//
// Functional options layer on top of the AnalyzerOptions struct, and
// an.AnalyzeStream overlaps log partitioning with reconstruction. Every
// configuration returns byte-identical output — flows stay in packet-ID
// order regardless of worker count or streaming:
//
//	an, _ := refill.NewAnalyzer(refill.AnalyzerOptions{},
//		refill.WithSink(1),
//		refill.WithParallelism(4), // 0 = each path's default, <0 = all cores
//	)
//	out := an.AnalyzeStream(logs)
//
// # Quick start: resident sessions
//
// Logs do not have to arrive as one finished collection. A Session is a
// long-lived analyzer: feed per-node log fragments as they are retrieved,
// advance the watermark to finalize (reconstruct, classify, evict) the
// packets that are provably complete, snapshot live reports at any point,
// and drain for the final report — byte-identical to the one-shot run over
// the same logs, with retained memory bounded by the in-flight packets
// rather than the campaign size:
//
//	sess, _ := an.NewSession(refill.SessionConfig{Horizon: maxSkew})
//	sess.Append(node, fragment)               // per node, in log order
//	sess.Advance(watermark)                   // finalize completed packets
//	rep := sess.Snapshot()                    // live report so far
//	sess.WriteCheckpoint(path)                // durable resume point
//	_, final := sess.Drain()                  // == one-shot report
//
// A checkpointed session survives a crash: Analyzer.ResumeSession rebuilds
// it from the file and, fed the same remaining fragments, drains into bytes
// identical to a session that never restarted.
//
// cmd/refill-serve wraps a session in an HTTP daemon (ingest + query +
// graceful drain) for deployments where loggers push fragments remotely.
//
// Collections themselves can be persisted as columnar snapshot files
// (WriteSnapshot / OpenSnapshot): page-aligned images of the in-memory
// layout that open by mmap with zero decode work — see cmd/refill's
// -snapshot and convert modes.
//
// Event storage is columnar (structure-of-arrays) internally, and
// reconstructed flows are spans into shared per-worker arenas rather than
// individually allocated slices; the facade deals in plain Event and Flow
// values and the log formats are unchanged. Parallel, streaming and session
// runs shard the packet space by origin, so each worker owns its arena and
// run state outright.
package refill

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/flow"
	"repro/internal/fsm"
	"repro/internal/ingest"
	"repro/internal/logging"
	"repro/internal/report"
	"repro/internal/sim/network"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core identifiers and the event model.
type (
	// NodeID identifies a node; Server is the base-station pseudo-node.
	NodeID = event.NodeID
	// PacketID identifies a packet end to end (origin node + sequence).
	PacketID = event.PacketID
	// EventType enumerates the protocol events (Trans, Recv, AckRecvd, …).
	EventType = event.Type
	// Event is the paper's (V, L, I) tuple.
	Event = event.Event
	// Log is one node's ordered event log.
	Log = event.Log
	// Collection is the set of per-node logs REFILL analyzes.
	Collection = event.Collection
)

// Event types (Table I plus the generation, timeout and last-mile events the
// CitySee stack logs).
const (
	Gen        = event.Gen
	Recv       = event.Recv
	Overflow   = event.Overflow
	Dup        = event.Dup
	Trans      = event.Trans
	AckRecvd   = event.AckRecvd
	Timeout    = event.Timeout
	ServerRecv = event.ServerRecv
	ServerDown = event.ServerDown
	ServerUp   = event.ServerUp
	Enqueue    = event.Enqueue
	Dequeue    = event.Dequeue
	Bcast      = event.Bcast
	Resp       = event.Resp
	Done       = event.Done
)

// Server is the base-station server pseudo-node; NoNode the absent node.
const (
	Server = event.Server
	NoNode = event.NoNode
)

// NewCollection returns an empty log collection.
func NewCollection() *Collection { return event.NewCollection() }

// ParseNode parses a node ID in the log formats' spelling (a decimal id, or
// "server" for the base-station pseudo-node).
func ParseNode(s string) (NodeID, error) { return event.ParseNodeID(s) }

// ReadLogs parses the text log format (one event per line).
func ReadLogs(r io.Reader) (*Collection, error) { return event.ReadCollection(r) }

// WriteLogs writes a collection in the text log format.
func WriteLogs(w io.Writer, c *Collection) error { return event.WriteCollection(w, c) }

// ReadLogsBinary parses the compact binary log format.
func ReadLogsBinary(r io.Reader) (*Collection, error) { return event.ReadCollectionBinary(r) }

// WriteLogsBinary writes a collection in the compact binary log format
// (smaller than text and ~5x faster to encode/parse; use it for
// multi-million-event campaigns).
func WriteLogsBinary(w io.Writer, c *Collection) error { return event.WriteCollectionBinary(w, c) }

// Snapshot is an opened columnar snapshot file: a page-aligned on-disk image
// of a Collection, memory-mapped so Snapshot.Collection's columns alias the
// page cache directly — opening costs no decode work and no per-event
// allocations, unlike the text and binary log formats. The collection is
// read-only (Clone a log's batch to mutate); keep the snapshot open for as
// long as the collection or anything read from it is referenced, and Close
// it afterwards to release the mapping.
type Snapshot = event.Snapshot

// WriteSnapshot writes c as a columnar snapshot file, atomically (temp file
// in the same directory, fsync, rename).
func WriteSnapshot(path string, c *Collection) error { return event.WriteSnapshot(path, c) }

// OpenSnapshot maps a snapshot file written by WriteSnapshot. The header and
// section geometry are verified on open; call Snapshot.Verify to also check
// the content checksums (a full read of the file).
func OpenSnapshot(path string) (*Snapshot, error) { return event.OpenSnapshot(path) }

// Reconstruction results.
type (
	// Flow is a reconstructed per-packet event flow; inferred items are
	// marked.
	Flow = flow.Flow
	// FlowItem is one element of a flow.
	FlowItem = flow.Item
	// Visit summarizes one engine visit (packet life cycle at a node).
	Visit = flow.Visit
	// Outcome is the per-packet diagnosis (cause + loss position).
	Outcome = diagnosis.Outcome
	// Cause is the loss-cause taxonomy of Section V-C.
	Cause = diagnosis.Cause
	// Report aggregates outcomes into the paper's figure-level views.
	Report = diagnosis.Report
	// Trace is the per-packet tracing product.
	Trace = trace.Trace
)

// Loss causes.
const (
	Delivered    = diagnosis.Delivered
	ReceivedLoss = diagnosis.ReceivedLoss
	AckedLoss    = diagnosis.AckedLoss
	TimeoutLoss  = diagnosis.TimeoutLoss
	DupLoss      = diagnosis.DupLoss
	OverflowLoss = diagnosis.OverflowLoss
	TransitLoss  = diagnosis.TransitLoss
	ServerOutage = diagnosis.ServerOutage
	UnknownLoss  = diagnosis.Unknown
)

// Causes lists every cause in presentation order.
func Causes() []Cause { return diagnosis.Causes() }

// Analyzer pipeline.
type (
	// AnalyzerOptions configures the pipeline. Zero-value footguns: Sink
	// has no default (the zero Sink is NoNode and NewAnalyzer rejects it —
	// add WithSink); a zero window leaves a trailing server outage
	// open-ended in the report (add WithWindow); Parallelism 0 picks each
	// path's default — serial for Analyze, all cores for the streaming and
	// session paths.
	AnalyzerOptions = core.Options
	// AnalyzerOption is a functional override applied on top of
	// AnalyzerOptions by NewAnalyzer (WithProtocol, WithParallelism, …).
	AnalyzerOption = core.Option
	// Analyzer is the ready-to-run REFILL pipeline.
	Analyzer = core.Analyzer
	// Output bundles reconstructed flows and the diagnosis report.
	Output = core.Output
	// SnapshotOptions tunes Analyzer.AnalyzeSnapshot — the out-of-core
	// path that reconstructs straight off a mapped snapshot in bounded
	// memory, one residency window at a time (window size, completeness
	// horizon, flow retention). The Output matches
	// an.Analyze(snap.Collection()) byte for byte.
	SnapshotOptions = core.SnapshotOptions
	// Accuracy scores a reconstruction against ground truth.
	Accuracy = core.Accuracy
	// Judgment is a (cause, position) pair from any analyzer.
	Judgment = core.Judgment
)

// NewAnalyzer builds the REFILL pipeline. Functional options are applied on
// top of opts in order:
//
//	an, _ := refill.NewAnalyzer(refill.AnalyzerOptions{},
//		refill.WithSink(1),
//		refill.WithProtocol(refill.ExtendedCTP()),
//		refill.WithParallelism(-1))
func NewAnalyzer(opts AnalyzerOptions, extra ...AnalyzerOption) (*Analyzer, error) {
	return core.NewAnalyzer(opts, extra...)
}

// WithSink names the collection-tree root — the one required option.
func WithSink(sink NodeID) AnalyzerOption { return core.WithSink(sink) }

// WithWindow bounds the analysis window [start, end): end bounds a trailing
// open server outage in the report, and start is the epoch daily bins are
// counted from.
func WithWindow(start, end int64) AnalyzerOption { return core.WithWindow(start, end) }

// WithProtocol overrides the FSM protocol templates.
func WithProtocol(p *Protocol) AnalyzerOption { return core.WithProtocol(p) }

// WithParallelism sets the per-packet reconstruction fan-out under one rule
// for every path: n > 0 exactly n workers, n < 0 all cores, 0 the path's
// default — serial for the batch Analyze (the reproducibility baseline),
// all cores for AnalyzeStream and Session ingest (the throughput paths).
// Output is byte-identical across all settings.
func WithParallelism(workers int) AnalyzerOption { return core.WithParallelism(workers) }

// WithEngineOptions imports engine-level configuration (ablations, inference
// caps, group roster) — for callers that previously built an engine.Options
// by hand and imported internal packages to do it. Fields left at their zero
// value in eo (nil protocol, zero sink, 0 caps, false ablation switches)
// preserve the analyzer's existing settings rather than resetting them.
func WithEngineOptions(eo EngineOptions) AnalyzerOption { return core.WithEngineOptions(eo) }

// WithDailyBins pre-bins the report's daily loss composition (Figure 6) at
// analysis time: Report.DailyComposition(dayLen, days) with the same
// arguments becomes a table read instead of a scan over every outcome.
func WithDailyBins(dayLen int64, days int) AnalyzerOption { return core.WithDailyBins(dayLen, days) }

// WithSeparateDiagnosis forces the legacy two-pass pipeline — reconstruct
// every flow, then diagnose them in a second pass — instead of the default
// fused mode where each worker classifies its flows as it commits them.
// Outputs are identical either way; this is an escape hatch for debugging
// and for measuring the fusion itself.
func WithSeparateDiagnosis() AnalyzerOption { return core.WithSeparateDiagnosis() }

// WithInterpretedEngine forces the engine's interpreted reference walk —
// per-event dense-table probes — instead of the default compiled-kernel
// execution (each protocol graph is lowered to a flat threaded-code op array
// at build time and driven by a column-wise walk over the packet view).
// Outputs are byte-identical either way; like WithSeparateDiagnosis this is
// an escape hatch for debugging and for measuring the kernel itself.
func WithInterpretedEngine() AnalyzerOption { return core.WithInterpretedEngine() }

// AnalyzeStream runs the pipeline with partitioning overlapped with
// reconstruction; the Output is identical to an.Analyze(logs).
//
// Deprecated: call the method an.AnalyzeStream(logs) directly — the
// analyzer owns its execution modes, and this package-level form survives
// only as a thin wrapper for existing callers.
func AnalyzeStream(an *Analyzer, logs *Collection) *Output { return an.AnalyzeStream(logs) }

// Resident ingest sessions.
type (
	// Session is the long-lived incremental analyzer: Append per-node log
	// fragments, Advance the watermark to finalize completed packets,
	// Snapshot live reports, Drain for the final batch-identical output.
	Session = ingest.Session
	// SessionConfig tunes Analyzer.NewSession (shards, horizon, flow
	// retention).
	SessionConfig = core.SessionConfig
	// SessionStats is a point-in-time snapshot of a session's lifecycle
	// counters (watermark, pending rows, finalized packets, …).
	SessionStats = ingest.Stats
)

// ErrSessionDrained is returned by Session mutations after Drain.
var ErrSessionDrained = ingest.ErrDrained

// ErrSessionCheckpointFlows is returned by Session.WriteCheckpoint on a
// RetainFlows session: flows are not serialized, so checkpointing one would
// silently change what Drain returns after a resume.
var ErrSessionCheckpointFlows = ingest.ErrCheckpointFlows

// Protocol templates.
type Protocol = fsm.Protocol

// DefaultCTP returns the CitySee protocol semantics (CTP data collection
// with generation events, hardware ACKs, bounded retransmissions, last mile).
func DefaultCTP() *Protocol { return fsm.DefaultCTP() }

// TableIIProtocol returns the Table II walkthrough variant (origins log no
// generation event), reproducing the paper's flows verbatim.
func TableIIProtocol() *Protocol { return fsm.TableII() }

// ExtendedCTP returns the richer-event protocol (queue enter/leave logged) —
// the paper's "include more events" future work. Pair with a campaign run
// with CampaignConfig.QueueEvents.
func ExtendedCTP() *Protocol { return fsm.ExtendedCTP() }

// DisseminationProtocol returns the negotiation semantics of Figure 3(b)/(d):
// a seeder broadcasts, members respond, completion carries a group
// prerequisite. Configure the engine's Group with the member roster.
func DisseminationProtocol() *Protocol { return fsm.Dissemination() }

// Classify diagnoses a single flow (without outage knowledge).
func Classify(f *Flow) Outcome { return diagnosis.Classify(f) }

// BuildTrace derives the per-packet trace from a flow.
func BuildTrace(f *Flow) *Trace { return trace.Build(f) }

// BuildTraces traces every flow, ordered by packet.
func BuildTraces(flows []*Flow) []*Trace { return trace.BuildAll(flows) }

// Scoring against simulator ground truth.
type (
	// GroundTruth is the simulator's omniscient run record.
	GroundTruth = network.GroundTruth
	// Fate is one packet's true disposition.
	Fate = network.Fate
)

// Score compares a report against ground-truth fates.
func Score(rep *Report, fates map[PacketID]Fate) Accuracy { return core.Score(rep, fates) }

// ScoreJudgments scores any analyzer's judgments the same way.
func ScoreJudgments(j map[PacketID]Judgment, fates map[PacketID]Fate) Accuracy {
	return core.ScoreJudgments(j, fates)
}

// Baselines.
type (
	// BaselineVerdict is a baseline's per-packet conclusion.
	BaselineVerdict = baseline.Verdict
	// LostPacket is one loss the sink view inferred, with approximate time.
	LostPacket = baseline.LostPacket
	// WitStats quantifies Wit-style common-event mergeability.
	WitStats = baseline.WitStats
)

// SinkView infers losses from delivered data alone (Figure 4's view).
func SinkView(c *Collection, period int64) []LostPacket { return baseline.SinkView(c, period) }

// NaiveAnalyze applies Section III's per-node trans-without-ack rule.
func NaiveAnalyze(c *Collection) map[PacketID]BaselineVerdict { return baseline.Naive(c) }

// ClockMergeAnalyze orders events by local clocks and classifies from the
// last event — the unsynchronized-logs straw man.
func ClockMergeAnalyze(c *Collection) map[PacketID]BaselineVerdict { return baseline.ClockMerge(c) }

// TimeCorrAnalyze attributes each loss to the dominant concurrent anomaly
// (Section V-D2's correlation method).
func TimeCorrAnalyze(c *Collection, lost []LostPacket, bin int64) map[PacketID]BaselineVerdict {
	return baseline.TimeCorr(c, lost, bin)
}

// WitMergeability measures how alignable per-node logs are via common events.
func WitMergeability(c *Collection) WitStats { return baseline.WitMergeability(c) }

// Campaign simulation (the evaluation substrate).
type (
	// CampaignConfig scripts a CitySee-like campaign.
	CampaignConfig = workload.CitySeeConfig
	// Campaign is a completed campaign: lossy logs + ground truth.
	Campaign = workload.Result
)

// RunCampaign simulates a campaign and collects its lossy logs.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) { return workload.Run(cfg) }

// TinyCampaign returns a fast small-scale campaign config (tests, examples).
func TinyCampaign(seed int64) CampaignConfig { return workload.Tiny(seed) }

// Report rendering.

// RenderBreakdown renders the Figure 9 / Section V-C cause table.
func RenderBreakdown(rep *Report) string { return report.Breakdown(rep) }

// RenderDaily renders Figure 6 (per-day cause composition).
func RenderDaily(rep *Report, dayLen int64, days int) string {
	return report.Daily(rep, dayLen, days)
}

// RenderAccuracy renders an analyzer-accuracy comparison table.
func RenderAccuracy(rows []report.AccuracyRow) string { return report.AccuracyTable(rows) }

// AccuracyRow pairs an analyzer name with its scored accuracy.
type AccuracyRow = report.AccuracyRow

// EngineOptions exposes the low-level engine configuration (ablations).
type EngineOptions = engine.Options

// Engine is the low-level reconstruction engine. NewEngine and
// Engine.AnalyzeParallel expose it for callers that want to drive the
// per-packet fan-out themselves.
type Engine = engine.Engine

// NewEngine builds the low-level engine directly.
func NewEngine(opts EngineOptions) (*Engine, error) { return engine.New(opts) }

// Logging policies (the paper's "efficient logging methods" future work).
type (
	// LogPolicy decides which events a node writes at all.
	LogPolicy = logging.Policy
	// LogCollectorConfig tunes the lossy collection process.
	LogCollectorConfig = logging.Config
	// LogCollector is the lossy, clock-skewed collection process.
	LogCollector = logging.Collector
)

// FullLogging logs everything (the default policy).
func FullLogging() LogPolicy { return logging.FullPolicy{} }

// SelectiveLogging logs only the first transmission per hop.
func SelectiveLogging() LogPolicy { return logging.NewSelectivePolicy() }

// SampledLogging logs each event with probability p.
func SampledLogging(p float64, seed int64) LogPolicy { return logging.NewSampledPolicy(p, seed) }

// ReceiverSideLogging drops all sender-side records.
func ReceiverSideLogging() LogPolicy { return logging.ReceiverSidePolicy{} }

// NewLogCollector builds a collection process; attach it to a simulation as
// an event sink.
func NewLogCollector(cfg LogCollectorConfig) *LogCollector { return logging.NewCollector(cfg) }

// Clock recovery: REFILL never needs synchronized clocks, but reconstructed
// flows contain enough cross-node pairings to estimate every node's clock
// offset and drift after the fact, anchored at the base-station server.
type (
	// ClockMap is a solved set of per-node clock parameters.
	ClockMap = clocksync.Result
	// ClockParams is one node's (offset, drift).
	ClockParams = clocksync.Params
)

// ClockOption tunes RecoverClocks (WithClockSweeps, WithClockMinPairings).
type ClockOption = clocksync.Option

// WithClockSweeps bounds the Gauss–Seidel iterations (<= 0 uses 10).
func WithClockSweeps(n int) ClockOption { return clocksync.WithSweeps(n) }

// WithClockMinPairings drops nodes with fewer than n cross-node pairings —
// too few to estimate reliably — before solving; they are reported in
// ClockMap.Unanchored.
func WithClockMinPairings(n int) ClockOption { return clocksync.WithMinPairings(n) }

// RecoverClocks estimates the network's clocks from reconstructed flows,
// anchored at anchor (normally refill.Server). With no options it uses the
// defaults: 10 Gauss–Seidel sweeps, every paired node kept.
func RecoverClocks(flows []*Flow, anchor NodeID, opts ...ClockOption) *ClockMap {
	return clocksync.EstimateWith(flows, anchor, opts...)
}

// RecoverClocksOpts tunes RecoverClocksWith.
//
// Deprecated: pass ClockOptions to RecoverClocks instead.
type RecoverClocksOpts = clocksync.Opts

// RecoverClocksWith estimates the network's clocks with an explicit options
// struct.
//
// Deprecated: use RecoverClocks(flows, anchor, opts...) — the variadic form
// subsumes both the default and the configured call.
func RecoverClocksWith(flows []*Flow, anchor NodeID, opts RecoverClocksOpts) *ClockMap {
	return clocksync.EstimateOpts(flows, anchor, opts)
}

// Per-packet performance measurement (Section II: "per-packet delay, packet
// retransmission, packet loss can also be revealed").
type (
	// PacketStats is one delivered packet's measured performance.
	PacketStats = stats.PacketStats
	// StatsSummary aggregates packet measurements.
	StatsSummary = stats.Summary
)

// ComputeStats measures delivered packets' delay/retransmissions/hops from
// flows; pass a recovered ClockMap to de-skew the delays (nil = raw clocks).
func ComputeStats(flows []*Flow, clocks *ClockMap) []PacketStats {
	return stats.Compute(flows, clocks)
}

// SummarizeStats reduces packet measurements to a summary.
func SummarizeStats(ps []PacketStats) StatsSummary { return stats.Summarize(ps) }
