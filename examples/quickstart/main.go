// Quickstart: reconstruct the paper's Table II walkthrough with the public
// API. A packet travels 1 -> 2 -> 3; we feed REFILL the complete log and the
// paper's lossy cases and print the reconstructed event flows, with inferred
// (lost) events in square brackets — exactly the notation of Section IV-C.
package main

import (
	"fmt"

	refill "repro"
)

var pkt = refill.PacketID{Origin: 1, Seq: 1}

// ev builds one log record; the node it belongs to follows from the type.
func ev(t refill.EventType, sender, receiver refill.NodeID) refill.Event {
	node := receiver
	if t.SenderSide() || t == refill.Gen {
		node = sender
	}
	return refill.Event{Node: node, Type: t, Sender: sender, Receiver: receiver, Packet: pkt}
}

func analyze(name string, events ...refill.Event) {
	logs := refill.NewCollection()
	for _, e := range events {
		logs.Add(e)
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{
		Sink:     100, // Table II's nodes are all plain forwarders
		Protocol: refill.TableIIProtocol(),
	})
	if err != nil {
		panic(err)
	}
	out := an.Analyze(logs)
	for _, f := range out.Result.Flows {
		outc := refill.Classify(f)
		verdict := "delivery in progress"
		if outc.Cause != refill.Delivered {
			verdict = fmt.Sprintf("%s loss at node %s", outc.Cause, outc.Position)
		}
		fmt.Printf("%-14s %s\n               -> %s\n", name+":", f, verdict)
	}
}

func main() {
	fmt.Println("REFILL quickstart — Table II of the paper")
	fmt.Println()

	analyze("complete log",
		ev(refill.Trans, 1, 2), ev(refill.AckRecvd, 1, 2),
		ev(refill.Recv, 1, 2), ev(refill.Trans, 2, 3), ev(refill.AckRecvd, 2, 3),
		ev(refill.Recv, 2, 3),
	)
	// Case 1: node 2's log is lost entirely; REFILL infers the two missing
	// events from node 3's reception.
	analyze("case 1",
		ev(refill.Trans, 1, 2),
		ev(refill.Recv, 2, 3),
	)
	// Case 2: only node 1's log survives; the ACK implies node 2 received
	// the packet — which then died inside node 2.
	analyze("case 2",
		ev(refill.Trans, 1, 2), ev(refill.AckRecvd, 1, 2),
	)
	// Case 3: ack BEFORE trans in node 1's log: the packet passed through
	// node 1 twice (loop/retransmission); the final transmission hangs.
	analyze("case 3",
		ev(refill.AckRecvd, 1, 2), ev(refill.Trans, 1, 2),
	)
	// Case 4: a full 1->2->3->1->2 routing loop where only node 2's second
	// reception is missing from the logs.
	analyze("case 4",
		ev(refill.Trans, 1, 2), ev(refill.AckRecvd, 1, 2), ev(refill.Recv, 3, 1),
		ev(refill.Trans, 1, 2), ev(refill.AckRecvd, 1, 2),
		ev(refill.Recv, 1, 2), ev(refill.Trans, 2, 3), ev(refill.AckRecvd, 2, 3), ev(refill.Trans, 2, 3),
		ev(refill.Recv, 2, 3), ev(refill.Trans, 3, 1), ev(refill.AckRecvd, 3, 1),
	)
}
