// Loopdetect: use reconstructed event flows to find routing loops and
// duplicate-suppression drops — the paper's observation that "duplication
// events … are often due to routing loops" — and show the evidence chain for
// a concrete looped packet, including events REFILL had to infer.
package main

import (
	"fmt"
	"sort"

	refill "repro"
	"repro/internal/sim"
)

func main() {
	// A campaign with aggressive interference makes stale routing caches
	// (and thus transient loops) frequent.
	cfg := refill.CampaignConfig{
		Nodes:        49,
		Days:         2,
		Seed:         99,
		Period:       5 * sim.Minute,
		SnowDays:     []int{1},
		FixDay:       2,
		OutageHours:  1,
		BurstsPerDay: 10,
	}
	camp, err := refill.RunCampaign(cfg)
	if err != nil {
		panic(err)
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		panic(err)
	}
	out := an.Analyze(camp.Logs)

	type loopInfo struct {
		pkt      refill.PacketID
		path     string
		dupDrops int
		inferred int
		outcome  refill.Outcome
	}
	var loops []loopInfo
	dupEvents := 0
	for _, f := range out.Result.Flows {
		for _, it := range f.Items {
			if it.Event.Type == refill.Dup {
				dupEvents++
			}
		}
		if !f.HasLoop() {
			continue
		}
		t := refill.BuildTrace(f)
		dups := 0
		for _, it := range f.Items {
			if it.Event.Type == refill.Dup {
				dups++
			}
		}
		loops = append(loops, loopInfo{
			pkt:      f.Packet,
			path:     t.PathString(),
			dupDrops: dups,
			inferred: f.InferredCount(),
			outcome:  t.Outcome,
		})
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].dupDrops > loops[j].dupDrops })

	fmt.Printf("analyzed %d packets: %d routing loops detected, %d duplicate drops logged\n\n",
		len(out.Result.Flows), len(loops), dupEvents)
	fmt.Println("loops with the most duplicate suppressions:")
	for i, l := range loops {
		if i >= 5 {
			break
		}
		verdict := "delivered anyway"
		if l.outcome.Cause != refill.Delivered {
			verdict = fmt.Sprintf("%s loss at %s", l.outcome.Cause, l.outcome.Position)
		}
		fmt.Printf("  %-8s path %-40s dups=%d inferred=%d -> %s\n",
			l.pkt, l.path, l.dupDrops, l.inferred, verdict)
	}
	if len(loops) > 0 {
		fmt.Println("\nfull evidence for the worst loop:")
		f := out.Flow(loops[0].pkt)
		fmt.Printf("event flow: %s\n", f)
		fmt.Print(refill.BuildTrace(f))
	}

	// How often do loops end in duplicate losses vs get delivered?
	delivered, dupLost, other := 0, 0, 0
	for _, l := range loops {
		switch l.outcome.Cause {
		case refill.Delivered:
			delivered++
		case refill.DupLoss:
			dupLost++
		default:
			other++
		}
	}
	fmt.Printf("\nloop outcomes: %d delivered, %d duplicate losses, %d other losses\n",
		delivered, dupLost, other)
}
