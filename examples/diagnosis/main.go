// Diagnosis: the full CitySee campaign analysis of Section V — run a multi-
// day campaign, reconstruct event flows from the lossy logs, and print the
// network-diagnosis products: overall loss-cause breakdown with the sink
// split (Figure 9), daily cause composition showing the snowstorm and the
// sink-cable fix (Figure 6), the most lossy positions, and a comparison of
// REFILL's accuracy against the baseline analyzers.
package main

import (
	"fmt"

	refill "repro"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	// A scaled-down campaign: 8 days with snow on day 3 and the sink's
	// flaky serial cable replaced on day 6.
	cfg := refill.CampaignConfig{
		Nodes:       64,
		Days:        8,
		Seed:        7,
		Period:      10 * sim.Minute,
		SnowDays:    []int{3},
		FixDay:      6,
		OutageHours: 6,
	}
	camp, err := experiments.RunCampaign(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("campaign: %d nodes, %d days; %d packets, %d lost\n\n",
		cfg.Nodes, cfg.Days, camp.Res.Truth.Generated, camp.Res.Truth.LossCount())

	fmt.Println("== loss-cause breakdown (cf. Figure 9 / Section V-C) ==")
	fmt.Println(refill.RenderBreakdown(camp.Out.Report))

	fmt.Println("== daily composition (cf. Figure 6) ==")
	fig6 := experiments.Fig6(camp)
	fmt.Println(fig6.Text)

	fmt.Println("== where packets are lost (cf. Figure 5) ==")
	for _, top := range camp.Out.Report.TopLossPositions(5) {
		mark := ""
		if top.Node == camp.Res.Sink {
			mark = "  <- the sink (its serial cable, until the fix)"
		}
		fmt.Printf("  node %-6s %5d losses%s\n", top.Node, top.Count, mark)
	}
	fmt.Println()

	fmt.Println("== analyzer accuracy vs simulator ground truth ==")
	rows := experiments.ScoreAllAnalyzers(camp)
	var rrows []report.AccuracyRow
	for _, r := range rows {
		rrows = append(rrows, report.AccuracyRow{Name: r.Name, Acc: r.Acc})
	}
	fmt.Print(report.AccuracyTable(rrows))

	// The Wit contrast (Section VI): local logs share no common events, so
	// a common-event merger has nothing to align with.
	wit := refill.WitMergeability(camp.Res.Logs)
	fmt.Printf("\nWit-style common-event mergeability: %.1f%% of multi-node packets (%d/%d)\n",
		100*wit.MergeableRate(), wit.Mergeable, wit.MultiNode)
}
