// Dissemination: REFILL on a second protocol family — the negotiation
// scenarios of the paper's Figure 3(b)/(d). A seeder announces item versions
// to a group and completes a round once every member responded; the group
// (many-to-1) prerequisite lets REFILL reconstruct whole rounds from heavily
// lossy logs, including the paper's headline single-event cascade.
package main

import (
	"fmt"

	refill "repro"
	"repro/internal/logging"
	"repro/internal/sim/dissem"
)

func main() {
	cfg := dissem.DefaultConfig(8, 40)
	cfg.Seed = 3

	// Collect with 40% of log records lost.
	lc := logging.DefaultConfig(cfg.Seed + 1)
	lc.LossRate = 0.4
	coll := logging.NewCollector(lc)
	gt, err := dissem.Run(cfg, coll)
	if err != nil {
		panic(err)
	}
	logs := coll.Collection()
	fmt.Printf("simulated %d dissemination rounds over %d members (%d completed)\n",
		cfg.Rounds, cfg.Members, gt.Completed)
	seen, dropped := coll.Stats()
	fmt.Printf("logs: %d of %d records survived collection\n\n", seen-dropped, seen)

	eng, err := refill.NewEngine(refill.EngineOptions{
		Protocol: refill.DisseminationProtocol(),
		Sink:     999, // no collection tree in this protocol
		Group:    cfg.Roster(),
	})
	if err != nil {
		panic(err)
	}
	res := eng.Analyze(logs)
	reports := dissem.Evaluate(res.Flows, cfg.Roster())

	agree, inferred := 0, 0
	for _, r := range reports {
		truth := gt.Rounds[r.Packet]
		if r.Complete == truth.Completed {
			agree++
		}
		inferred += r.Inferred
	}
	fmt.Printf("reconstructed %d rounds; completeness verdicts agree with ground truth on %d\n",
		len(reports), agree)
	fmt.Printf("inferred %d lost events overall\n\n", inferred)

	// The Figure 3(a) party trick: wipe everything except the seeder's
	// Done record for one round and reconstruct the whole negotiation.
	for _, r := range reports {
		if !r.Complete {
			continue
		}
		only := refill.NewCollection()
		only.Add(refill.Event{Node: dissem.Seeder, Type: refill.Done,
			Sender: dissem.Seeder, Packet: r.Packet})
		f := eng.Analyze(only).Flows[0]
		fmt.Println("single surviving record — the seeder's `done`:")
		fmt.Printf("  reconstructed flow: %s\n", f)
		fmt.Printf("  (%d of %d events inferred)\n", f.InferredCount(), len(f.Items))
		break
	}
}
