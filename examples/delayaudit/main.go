// Delayaudit: measure per-packet delay from unsynchronized logs. The paper
// notes that event flows reveal "per-packet delay, packet retransmission,
// packet loss"; with per-node clocks minutes apart, delays only become
// meaningful after post-hoc clock recovery — which the reconstructed flows
// themselves make possible. This example runs a small campaign, recovers
// every node's clock offset and drift from the flows, and contrasts delay
// measurements on raw vs recovered clocks.
package main

import (
	"fmt"
	"sort"

	refill "repro"
)

func main() {
	camp, err := refill.RunCampaign(refill.TinyCampaign(77))
	if err != nil {
		panic(err)
	}
	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		panic(err)
	}
	out := an.Analyze(camp.Logs)

	// Recover the clocks from the flows (anchor: the base-station server,
	// whose clock is NTP-disciplined).
	clocks := refill.RecoverClocks(out.Result.Flows, refill.Server)
	fmt.Printf("recovered clocks for %d nodes from %d cross-node event pairs\n\n",
		len(clocks.Nodes), clocks.Pairs)

	raw := refill.ComputeStats(out.Result.Flows, nil)
	corrected := refill.ComputeStats(out.Result.Flows, clocks)

	show := func(label string, ps []refill.PacketStats) {
		s := refill.SummarizeStats(ps)
		gross := 0
		for _, p := range ps {
			if p.Delay < -5_000_000 { // impossible by >5s: pure clock skew
				gross++
			}
		}
		fmt.Printf("%-18s packets=%d  mean=%8.2fs  p50=%8.2fs  p95=%8.2fs  impossible(<-5s)=%d\n",
			label, s.Count, float64(s.MeanDelay)/1e6, float64(s.P50Delay)/1e6,
			float64(s.P95Delay)/1e6, gross)
	}
	fmt.Println("end-to-end delay, generation -> server:")
	show("raw local clocks", raw)
	show("recovered clocks", corrected)

	// Grossly negative delays are physically impossible — pure clock
	// skew. Their disappearance is the visible proof the recovery worked
	// (residual small negatives reflect the ~1-2s estimation noise).
	s := refill.SummarizeStats(corrected)
	fmt.Printf("\nmean transmissions per delivered packet: %.2f over %.2f hops (%d looped)\n",
		s.MeanTransmissions, s.MeanHops, s.Loops)

	// The slowest packets, with their stories.
	sort.Slice(corrected, func(i, j int) bool { return corrected[i].Delay > corrected[j].Delay })
	fmt.Println("\nslowest deliveries:")
	for i, p := range corrected {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-8s delay=%6.1fs hops=%d transmissions=%d loop=%v\n",
			p.Packet, float64(p.Delay)/1e6, p.Hops, p.Transmissions, p.Loop)
		if f := out.Flow(p.Packet); f != nil {
			fmt.Printf("    trace: %s\n", refill.BuildTrace(f).PathString())
		}
	}
}
