// Packettrace: simulate a small CitySee-like network, reconstruct every
// packet's event flow from the lossy logs, and print detailed per-packet
// traces — the paper's "detailed per-packet tracing information based on
// event flows" — for a delivered packet, a lost packet, and a routing loop.
package main

import (
	"fmt"

	refill "repro"
)

func main() {
	camp, err := refill.RunCampaign(refill.TinyCampaign(2015))
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulated %d packets over %d nodes; %d lost; %d log records survived collection\n\n",
		camp.Truth.Generated, camp.Config.Nodes, camp.Truth.LossCount(), camp.Logs.TotalEvents())

	an, err := refill.NewAnalyzer(refill.AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		panic(err)
	}
	out := an.Analyze(camp.Logs)
	traces := refill.BuildTraces(out.Result.Flows)

	var delivered, lost, looped *refill.Trace
	for _, t := range traces {
		switch {
		case looped == nil && t.Loop:
			looped = t
		case delivered == nil && t.Outcome.Cause == refill.Delivered && len(t.Hops) >= 2:
			delivered = t
		case lost == nil && t.Outcome.Cause != refill.Delivered && len(t.Hops) >= 1 && t.InferredEvents > 0:
			lost = t
		}
		if delivered != nil && lost != nil && looped != nil {
			break
		}
	}

	show := func(title string, t *refill.Trace) {
		fmt.Println("##", title)
		if t == nil {
			fmt.Println("   (no such packet in this run)")
			return
		}
		fl := out.Flow(t.Packet)
		fmt.Printf("event flow: %s\n", fl)
		fmt.Print(t)
		fmt.Println()
	}
	show("a delivered multi-hop packet", delivered)
	show("a lost packet with inferred (missing) log events", lost)
	show("a packet caught in a routing loop", looped)

	loops := 0
	for _, t := range traces {
		if t.Loop {
			loops++
		}
	}
	fmt.Printf("in total: %d of %d packets showed routing loops\n", loops, len(traces))
}
