package refill

// Equivalence suite for the work-stealing shard scheduler on the workload it
// exists for: a campaign where one hot origin dominates the packet volume.
// Under the legacy static origin-chunk cut, that origin is one indivisible
// chunk and its owner serializes the tail; the steal scheduler splits it
// mid-origin across idle workers. Either way — and on every path that uses a
// scheduler (parallel, stream, windowed out-of-core) — the output must be
// byte-identical to the serial reference, because steal decisions are racy by
// construction and must never leak into results.

import (
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// skewedLogs derives a hot-origin campaign from real simulated logs: every
// packet of the busiest origin is replicated reps times under fresh sequence
// numbers (same per-node rows, same timestamps), then each node's log is
// stably re-sorted by time so the per-node time order the out-of-core planner
// requires still holds. The result is a protocol-valid collection where one
// origin carries an order of magnitude more packets than any other — the
// distribution that serializes a static origin-aligned cut.
func skewedLogs(t testing.TB, seed int64, reps int) (*Collection, NodeID, int64) {
	t.Helper()
	camp, err := RunCampaign(TinyCampaign(seed))
	if err != nil {
		t.Fatal(err)
	}
	logs := camp.Logs

	seen := make(map[PacketID]bool)
	perOrigin := make(map[NodeID]int)
	maxSeq := uint32(0)
	for _, n := range logs.Nodes() {
		for _, e := range logs.Log(n).Events() {
			if !e.Type.PacketScoped() {
				continue
			}
			if e.Packet.Seq > maxSeq {
				maxSeq = e.Packet.Seq
			}
			if !seen[e.Packet] {
				seen[e.Packet] = true
				perOrigin[e.Packet.Origin]++
			}
		}
	}
	hot, hotCount := NoNode, 0
	//refill:allow maprange — argmax with deterministic tie-break on the smaller ID
	for origin, count := range perOrigin {
		if count > hotCount || (count == hotCount && origin < hot) {
			hot, hotCount = origin, count
		}
	}
	if hotCount == 0 {
		t.Fatal("campaign has no packets")
	}

	out := NewCollection()
	for _, n := range logs.Nodes() {
		evs := logs.Log(n).Events()
		grown := make([]Event, 0, len(evs)*2)
		for _, e := range evs {
			grown = append(grown, e)
			if e.Type.PacketScoped() && e.Packet.Origin == hot {
				for r := 1; r <= reps; r++ {
					ce := e
					ce.Packet.Seq = e.Packet.Seq + uint32(r)*(maxSeq+1)
					grown = append(grown, ce)
				}
			}
		}
		// Stable by time: replica rows carry their originals' timestamps,
		// so each replica packet's per-node row order mirrors the original
		// packet's exactly — a valid packet log.
		sort.SliceStable(grown, func(i, j int) bool { return grown[i].Time < grown[j].Time })
		l := out.Log(n)
		for _, e := range grown {
			l.Append(e)
		}
	}
	return out, camp.Sink, int64(camp.Duration)
}

func TestSkewedOriginSchedulerEquivalence(t *testing.T) {
	logs, sink, end := skewedLogs(t, 13, 12)
	opts := AnalyzerOptions{Sink: sink, End: end}
	serial, err := NewAnalyzer(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Analyze(logs)
	if len(want.Result.Flows) == 0 {
		t.Fatal("no flows")
	}
	wantFlows := serializeFlows(want.Result.Flows)
	wantReport := RenderBreakdown(want.Report)

	modes := []struct {
		name   string
		extra  []AnalyzerOption
		stream bool
	}{
		{"parallel-8-steal", []AnalyzerOption{WithParallelism(8)}, false},
		{"parallel-8-static", []AnalyzerOption{WithParallelism(8), WithEngineOptions(EngineOptions{StaticSharding: true})}, false},
		{"stream-8-steal", []AnalyzerOption{WithParallelism(8)}, true},
		{"stream-8-static", []AnalyzerOption{WithParallelism(8), WithEngineOptions(EngineOptions{StaticSharding: true})}, true},
		{"two-pass-parallel-8", []AnalyzerOption{WithParallelism(8), WithSeparateDiagnosis()}, false},
	}
	for _, m := range modes {
		an, err := NewAnalyzer(opts, m.extra...)
		if err != nil {
			t.Fatal(err)
		}
		var out *Output
		if m.stream {
			out = an.AnalyzeStream(logs)
		} else {
			out = an.Analyze(logs)
		}
		if !reflect.DeepEqual(want.Result, out.Result) {
			t.Errorf("%s: result diverged from serial", m.name)
		}
		if got := serializeFlows(out.Result.Flows); got != wantFlows {
			t.Errorf("%s: flow serialization diverged", m.name)
		}
		if got := RenderBreakdown(out.Report); got != wantReport {
			t.Errorf("%s: report diverged", m.name)
		}
	}

	// Out-of-core over the same skewed campaign: snapshot it, analyze in
	// small residency windows (each window runs the same steal scheduler),
	// and require byte-identity with serial batch again.
	path := filepath.Join(t.TempDir(), "skewed.snap")
	if err := WriteSnapshot(path, logs); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	ooc, err := NewAnalyzer(opts, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	out := ooc.AnalyzeSnapshot(snap, SnapshotOptions{WindowRows: 301})
	if !reflect.DeepEqual(want.Result.Flows, out.Result.Flows) {
		t.Error("out-of-core: flows diverged from serial")
	}
	if got := RenderBreakdown(out.Report); got != wantReport {
		t.Error("out-of-core: report diverged")
	}
}
