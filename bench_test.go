package refill

// Benchmark harness: one benchmark per evaluation artifact (Table II,
// Figures 4, 5, 6, 8, 9) plus the extension experiments (accuracy sweep,
// ablations) and engine scaling. Each figure benchmark reuses a single
// simulated campaign (built outside the timer) and measures the analysis
// that regenerates the artifact; custom metrics report the headline numbers
// so `go test -bench .` doubles as the reproduction harness.

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/fsm"
	"repro/internal/logging"
	"repro/internal/sim"
	"repro/internal/sim/dissem"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchCamp *experiments.Campaign
	benchErr  error
)

// benchCampaign builds the shared small campaign once.
func benchCampaign(b *testing.B) *experiments.Campaign {
	b.Helper()
	benchOnce.Do(func() {
		benchCamp, benchErr = experiments.RunCampaign(experiments.SmallCampaign())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCamp
}

// tableIIView builds the paper's Case 4 packet view.
func tableIIView() *event.PacketView {
	pkt := event.PacketID{Origin: 1, Seq: 1}
	mk := func(t event.Type, s, r event.NodeID) event.Event {
		n := r
		if t.SenderSide() {
			n = s
		}
		return event.Event{Node: n, Type: t, Sender: s, Receiver: r, Packet: pkt}
	}
	return event.NewPacketView(pkt, map[event.NodeID][]event.Event{
		1: {mk(event.Trans, 1, 2), mk(event.AckRecvd, 1, 2), mk(event.Recv, 3, 1),
			mk(event.Trans, 1, 2), mk(event.AckRecvd, 1, 2)},
		2: {mk(event.Recv, 1, 2), mk(event.Trans, 2, 3), mk(event.AckRecvd, 2, 3),
			mk(event.Trans, 2, 3)},
		3: {mk(event.Recv, 2, 3), mk(event.Trans, 3, 1), mk(event.AckRecvd, 3, 1)},
	})
}

// BenchmarkTableII measures reconstructing the paper's Table II Case 4
// walkthrough (experiment E-T2): a routing loop with one lost log record.
func BenchmarkTableII(b *testing.B) {
	eng, err := engine.New(engine.Options{Protocol: fsm.TableII(), Sink: 100})
	if err != nil {
		b.Fatal(err)
	}
	view := tableIIView()
	b.ReportAllocs()
	b.ResetTimer()
	var inferred int
	for i := 0; i < b.N; i++ {
		f := eng.AnalyzePacket(view)
		inferred = f.InferredCount()
	}
	b.ReportMetric(float64(inferred), "inferred/pkt")
}

// BenchmarkAnalyzePacket isolates single-packet reconstruction cost on a
// lossy multi-hop chain: the engine must infer a lost recv and a lost ack,
// exercising prerequisite driving and path inference, with no campaign or
// partitioning overhead around it.
func BenchmarkAnalyzePacket(b *testing.B) {
	pkt := event.PacketID{Origin: 1, Seq: 1}
	hops := 8
	path := make([]event.NodeID, hops+1)
	for i := range path {
		path[i] = event.NodeID(i + 1)
	}
	perNode := map[event.NodeID][]event.Event{}
	add := func(e event.Event) {
		perNode[e.Node] = append(perNode[e.Node], e)
	}
	add(event.Event{Node: 1, Type: event.Gen, Sender: 1, Packet: pkt})
	for i := 0; i+1 < len(path); i++ {
		s, r := path[i], path[i+1]
		add(event.Event{Node: s, Type: event.Trans, Sender: s, Receiver: r, Packet: pkt})
		if i%3 != 1 { // every third hop loses its recv record
			add(event.Event{Node: r, Type: event.Recv, Sender: s, Receiver: r, Packet: pkt})
		}
		if i%4 != 2 { // and some hops lose the ack record
			add(event.Event{Node: s, Type: event.AckRecvd, Sender: s, Receiver: r, Packet: pkt})
		}
	}
	view := event.NewPacketView(pkt, perNode)
	eng, err := engine.New(engine.Options{Sink: path[len(path)-1]})
	if err != nil {
		b.Fatal(err)
	}
	nEvents := view.TotalEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := eng.AnalyzePacket(view)
		if len(f.Items) == 0 {
			b.Fatal("empty flow")
		}
	}
	b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkFig3Dissemination measures the Figure 3 scenarios (experiment
// E-T3): reconstructing dissemination rounds — including the single-record
// full-round cascade — on the negotiation protocol.
func BenchmarkFig3Dissemination(b *testing.B) {
	cfg := dissem.DefaultConfig(10, 50)
	lc := logging.DefaultConfig(cfg.Seed + 1)
	lc.LossRate = 0.3
	coll := logging.NewCollector(lc)
	if _, err := dissem.Run(cfg, coll); err != nil {
		b.Fatal(err)
	}
	logs := coll.Collection()
	eng, err := engine.New(engine.Options{
		Protocol: fsm.Dissemination(), Sink: 999, Group: cfg.Roster(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var inferred int
	for i := 0; i < b.N; i++ {
		res := eng.Analyze(logs)
		reports := dissem.Evaluate(res.Flows, cfg.Roster())
		inferred = 0
		for _, r := range reports {
			inferred += r.Inferred
		}
	}
	b.ReportMetric(float64(inferred), "inferred")
}

// BenchmarkFig4SinkView regenerates Figure 4 (source-view temporal
// distribution of losses via the sequence-gap sink view).
func BenchmarkFig4SinkView(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	var r *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig4(c)
	}
	b.ReportMetric(float64(len(r.Points)), "losses")
	b.ReportMetric(float64(r.DistinctSources), "sources")
}

// BenchmarkFig5LossPositions regenerates Figure 5 (loss causes by REFILL
// loss position; concentration + sink band).
func BenchmarkFig5LossPositions(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	var r *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig5(c)
	}
	b.ReportMetric(100*r.TopShare, "top5share%")
	b.ReportMetric(100*r.SinkShare, "sinkshare%")
}

// BenchmarkFig6DailyCauses regenerates Figure 6 (daily cause composition:
// snow spike, post-fix sink collapse).
func BenchmarkFig6DailyCauses(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(c)
	}
	b.ReportMetric(float64(r.SnowDayLosses), "snowdaylosses")
	b.ReportMetric(100*r.SinkSharePreFix, "sinkpre%")
	b.ReportMetric(100*r.SinkSharePostFix, "sinkpost%")
}

// BenchmarkFig8Spatial regenerates Figure 8 (spatial distribution of
// received losses; the sink dominates).
func BenchmarkFig8Spatial(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	var r *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(c)
	}
	sinkMax := 0.0
	if r.SinkIsMax {
		sinkMax = 1
	}
	b.ReportMetric(sinkMax, "sinkismax")
	b.ReportMetric(float64(len(r.BySite)), "sites")
}

// BenchmarkFig9CauseBreakdown regenerates Figure 9 / Section V-C (overall
// cause breakdown with sink splits).
func BenchmarkFig9CauseBreakdown(b *testing.B) {
	c := benchCampaign(b)
	b.ResetTimer()
	var r *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9(c)
	}
	b.ReportMetric(100*r.Frac[ReceivedLoss], "received%")
	b.ReportMetric(100*r.Frac[AckedLoss], "acked%")
	b.ReportMetric(100*r.Frac[ServerOutage], "outage%")
}

// BenchmarkAnalyzeCampaign measures the full REFILL pipeline (engine +
// diagnosis) over the shared campaign's lossy logs — the system's hot path.
func BenchmarkAnalyzeCampaign(b *testing.B) {
	c := benchCampaign(b)
	an, err := core.NewAnalyzer(core.Options{Sink: c.Res.Sink, End: int64(c.Res.Duration)})
	if err != nil {
		b.Fatal(err)
	}
	events := c.Res.Logs.TotalEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := an.Analyze(c.Res.Logs)
		if len(out.Result.Flows) == 0 {
			b.Fatal("no flows")
		}
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAccuracyVsLogLoss runs the E-A1 sweep at benchmark scale and
// reports REFILL's cause accuracy at the extremes.
func BenchmarkAccuracyVsLogLoss(b *testing.B) {
	base := workload.Tiny(11)
	var res *experiments.AccuracyVsLogLossResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AccuracyVsLogLoss(base, []float64{0, 0.4, 0.8})
		if err != nil {
			b.Fatal(err)
		}
	}
	refillAt := func(i int) float64 {
		for _, r := range res.Rows[i] {
			if r.Name == "refill" {
				return 100 * r.Acc.CauseRate()
			}
		}
		return 0
	}
	b.ReportMetric(refillAt(0), "cause%@0loss")
	b.ReportMetric(refillAt(2), "cause%@80loss")
}

// BenchmarkAblationFull / NoIntra / NoInter / Neither measure the engine
// variants over the same logs (experiment E-A2); the metric is cause
// accuracy against ground truth.
func benchmarkAblation(b *testing.B, disableIntra, disableInter bool) {
	c := benchCampaign(b)
	an, err := core.NewAnalyzer(core.Options{
		Sink: c.Res.Sink, End: int64(c.Res.Duration),
		DisableIntra: disableIntra, DisableInter: disableInter,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc core.Accuracy
	for i := 0; i < b.N; i++ {
		acc = core.Score(an.Analyze(c.Res.Logs).Report, c.Res.Truth.Fates)
	}
	b.ReportMetric(100*acc.CauseRate(), "cause%")
	b.ReportMetric(100*acc.PositionRate(), "position%")
}

func BenchmarkAblationFull(b *testing.B)    { benchmarkAblation(b, false, false) }
func BenchmarkAblationNoIntra(b *testing.B) { benchmarkAblation(b, true, false) }
func BenchmarkAblationNoInter(b *testing.B) { benchmarkAblation(b, false, true) }
func BenchmarkAblationNeither(b *testing.B) { benchmarkAblation(b, true, true) }

// BenchmarkEngineChain measures raw engine throughput on synthetic delivered
// chains of increasing length (scaling, experiment E-A3).
func BenchmarkEngineChain(b *testing.B) {
	for _, hops := range []int{2, 8, 32} {
		hops := hops
		b.Run(sizeName(hops), func(b *testing.B) {
			pkt := event.PacketID{Origin: 1, Seq: 1}
			path := make([]event.NodeID, hops+1)
			for i := range path {
				path[i] = event.NodeID(i + 1)
			}
			perNode := map[event.NodeID][]event.Event{}
			tick := int64(0)
			add := func(e event.Event) {
				tick += 10
				e.Time = tick
				perNode[e.Node] = append(perNode[e.Node], e)
			}
			add(event.Event{Node: 1, Type: event.Gen, Sender: 1, Packet: pkt})
			for i := 0; i+1 < len(path); i++ {
				s, r := path[i], path[i+1]
				add(event.Event{Node: s, Type: event.Trans, Sender: s, Receiver: r, Packet: pkt})
				add(event.Event{Node: r, Type: event.Recv, Sender: s, Receiver: r, Packet: pkt})
				add(event.Event{Node: s, Type: event.AckRecvd, Sender: s, Receiver: r, Packet: pkt})
			}
			view := event.NewPacketView(pkt, perNode)
			eng, err := engine.New(engine.Options{Sink: path[len(path)-1]})
			if err != nil {
				b.Fatal(err)
			}
			nEvents := view.TotalEvents()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := eng.AnalyzePacket(view)
				if len(f.Items) != nEvents {
					b.Fatalf("items = %d, want %d", len(f.Items), nEvents)
				}
			}
			b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

func sizeName(hops int) string {
	switch hops {
	case 2:
		return "hops=2"
	case 8:
		return "hops=8"
	default:
		return "hops=32"
	}
}

// BenchmarkCampaignSimulation measures the simulator substrate itself.
func BenchmarkCampaignSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(workload.Tiny(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if res.Truth.Generated == 0 {
			b.Fatal("nothing generated")
		}
	}
}

// BenchmarkAnalyzeCampaignParallel measures the parallel fan-out of the
// per-packet reconstruction over the shared campaign logs.
func BenchmarkAnalyzeCampaignParallel(b *testing.B) {
	c := benchCampaign(b)
	eng, err := engine.New(engine.Options{Sink: c.Res.Sink})
	if err != nil {
		b.Fatal(err)
	}
	events := c.Res.Logs.TotalEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.AnalyzeParallel(c.Res.Logs, 0)
		if len(res.Flows) == 0 {
			b.Fatal("no flows")
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAnalyzeCampaignStream measures the streaming pipeline, where
// partitioning overlaps with per-packet analysis.
func BenchmarkAnalyzeCampaignStream(b *testing.B) {
	c := benchCampaign(b)
	eng, err := engine.New(engine.Options{Sink: c.Res.Sink})
	if err != nil {
		b.Fatal(err)
	}
	events := c.Res.Logs.TotalEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.AnalyzeStream(c.Res.Logs, 0)
		if len(res.Flows) == 0 {
			b.Fatal("no flows")
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkFlowOutput isolates flow construction and storage cost from
// partitioning: the same pre-built views are reconstructed through the
// standalone heap path (one exact-sized allocation set per flow) and through
// the shared flow arena (AnalyzeViews: spans carved out of chunked columns).
// Both run serially, so allocs/op is deterministic and benchguard can pin it.
func BenchmarkFlowOutput(b *testing.B) {
	c := benchCampaign(b)
	eng, err := engine.New(engine.Options{Sink: c.Res.Sink})
	if err != nil {
		b.Fatal(err)
	}
	views, _ := event.Partition(c.Res.Logs)
	if len(views) == 0 {
		b.Fatal("no views")
	}
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, v := range views {
				if f := eng.AnalyzePacket(v); len(f.Items) == 0 {
					b.Fatal("empty flow")
				}
			}
		}
		b.ReportMetric(float64(len(views)), "flows")
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flows := eng.AnalyzeViews(views)
			if len(flows) != len(views) {
				b.Fatal("flow count mismatch")
			}
		}
		b.ReportMetric(float64(len(views)), "flows")
	})
}

// BenchmarkKernel isolates the FSM walk strategy over the shared campaign's
// pre-built views: the compiled threaded-code kernel walk (the default hot
// path — one flat op-table load per event, classification read straight off
// the batch columns) against the interpreted reference walk (dense-table
// probes and per-event Event materialization, kept as the semantic oracle
// behind -interpreted). Both run the same serial AnalyzeViews path so
// allocs/op is deterministic and benchguard can pin it.
func BenchmarkKernel(b *testing.B) {
	c := benchCampaign(b)
	views, _ := event.Partition(c.Res.Logs)
	if len(views) == 0 {
		b.Fatal("no views")
	}
	run := func(b *testing.B, opts engine.Options) {
		eng, err := engine.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			flows := eng.AnalyzeViews(views)
			if len(flows) != len(views) {
				b.Fatal("flow count mismatch")
			}
		}
		b.ReportMetric(float64(len(views)), "flows")
	}
	b.Run("kernel", func(b *testing.B) {
		run(b, engine.Options{Sink: c.Res.Sink})
	})
	b.Run("interpreted", func(b *testing.B) {
		run(b, engine.Options{Sink: c.Res.Sink, Interpreted: true})
	})
}

// BenchmarkDiagnosis isolates the diagnosis layer on the shared campaign's
// reconstructed flows. classify is one scratch-backed classifier pass over
// every flow — steady-state it performs ZERO allocations, the tentpole
// invariant benchguard pins (the scratch is warmed before the timer, since
// the baseline runs at -benchtime 1x). build is the full serial diagnosis
// (classification, outage application, one-pass aggregation) producing a
// finished report; reads exercises every aggregate-backed figure read on a
// prebuilt report. All three run serially, so allocs/op is deterministic.
func BenchmarkDiagnosis(b *testing.B) {
	c := benchCampaign(b)
	flows := c.Out.Result.Flows
	ops := c.Out.Result.Operational
	end := int64(c.Res.Duration)
	dayLen := int64(sim.Day)
	days := int((end + dayLen - 1) / dayLen)
	cfg := diagnosis.Config{Sink: c.Res.Sink, End: end, DayLen: dayLen, Days: days}
	b.Run("classify", func(b *testing.B) {
		cl := diagnosis.NewClassifier()
		for _, f := range flows {
			cl.Classify(f) // warm the scratch to its high-water mark
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range flows {
				cl.Classify(f)
			}
		}
		b.ReportMetric(float64(len(flows)), "flows")
	})
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		var rep *diagnosis.Report
		for i := 0; i < b.N; i++ {
			rep = diagnosis.BuildConfig(flows, ops, cfg)
		}
		b.ReportMetric(float64(rep.LossCount()), "losses")
	})
	b.Run("reads", func(b *testing.B) {
		rep := diagnosis.BuildConfig(flows, ops, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		var touched int
		for i := 0; i < b.N; i++ {
			touched = len(rep.Breakdown()) + len(rep.SourcePoints()) +
				len(rep.PositionPoints()) + len(rep.DailyComposition(dayLen, days)) +
				len(rep.LossesBySite(diagnosis.ReceivedLoss)) + len(rep.TopLossPositions(10)) +
				rep.LoopCount()
		}
		b.ReportMetric(float64(touched), "touched")
	})
}

// BenchmarkClockRecovery measures post-hoc clock estimation (E-A6) over the
// shared campaign's reconstructed flows; the metric is the mean absolute
// local-time error in seconds.
func BenchmarkClockRecovery(b *testing.B) {
	c := benchCampaign(b)
	var res *experiments.ClockRecoveryResult
	for i := 0; i < b.N; i++ {
		res = experiments.ClockRecovery(c)
	}
	b.ReportMetric(res.MAE/1e6, "mae_s")
	b.ReportMetric(res.NaiveMAE/1e6, "naive_s")
	b.ReportMetric(float64(res.Pairs), "pairs")
}

// BenchmarkLoggingPolicies measures the E-A4 policy study end to end and
// reports the selective policy's volume saving and accuracy.
func BenchmarkLoggingPolicies(b *testing.B) {
	var res *experiments.LoggingPolicyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.LoggingPolicies(workload.Tiny(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		if r.Name == "selective" {
			b.ReportMetric(100*r.VolumeFrac, "sel_volume%")
			b.ReportMetric(100*r.Acc.CauseRate(), "sel_cause%")
		}
	}
}

// BenchmarkBinaryCodec measures the compact log encoding round trip against
// the text codec on the shared campaign's logs.
func BenchmarkBinaryCodec(b *testing.B) {
	c := benchCampaign(b)
	logs := c.Res.Logs
	b.Run("write-binary", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := event.WriteCollectionBinary(&buf, logs); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("write-text", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := event.WriteCollection(&buf, logs); err != nil {
				b.Fatal(err)
			}
			n = buf.Len()
		}
		b.ReportMetric(float64(n), "bytes")
	})
	var bin bytes.Buffer
	if err := event.WriteCollectionBinary(&bin, logs); err != nil {
		b.Fatal(err)
	}
	raw := bin.Bytes()
	b.Run("read-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, err := event.ReadCollectionBinary(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if got.TotalEvents() != logs.TotalEvents() {
				b.Fatal("count mismatch")
			}
		}
	})
}

// BenchmarkSnapshot measures the columnar snapshot path on the shared
// campaign's logs: writing the file, the zero-copy open (the headline —
// section geometry checks plus slice casts, no per-event work), and open
// followed by a full batch analysis against the read-binary-then-analyze
// pipeline it replaces.
func BenchmarkSnapshot(b *testing.B) {
	c := benchCampaign(b)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	path := filepath.Join(b.TempDir(), "campaign.snap")
	if err := WriteSnapshot(path, logs); err != nil {
		b.Fatal(err)
	}
	an, err := NewAnalyzer(AnalyzerOptions{}, WithSink(sink), WithWindow(0, end))
	if err != nil {
		b.Fatal(err)
	}
	rows := logs.TotalEvents()

	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteSnapshot(path, logs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := OpenSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			if s.Rows() != rows {
				b.Fatalf("rows = %d, want %d", s.Rows(), rows)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open-analyze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := OpenSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			out := an.Analyze(s.Collection())
			if out.Report.Total() == 0 {
				b.Fatal("no packets")
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open-analyze-windowed", func(b *testing.B) {
		// The out-of-core path on the same snapshot: windowed reconstruction
		// straight off the mapping, sized to force several residency windows.
		// Serial (Parallelism 1) so allocs/op is deterministic for benchguard.
		wan, err := NewAnalyzer(AnalyzerOptions{},
			WithSink(sink), WithWindow(0, end), WithParallelism(1))
		if err != nil {
			b.Fatal(err)
		}
		opts := SnapshotOptions{WindowRows: rows/6 + 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := OpenSnapshot(path)
			if err != nil {
				b.Fatal(err)
			}
			out := wan.AnalyzeSnapshot(s, opts)
			if out.Report.Total() == 0 {
				b.Fatal("no packets")
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	var bin bytes.Buffer
	if err := event.WriteCollectionBinary(&bin, logs); err != nil {
		b.Fatal(err)
	}
	raw := bin.Bytes()
	b.Run("read-binary-analyze", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := event.ReadCollectionBinary(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			out := an.Analyze(got)
			if out.Report.Total() == 0 {
				b.Fatal("no packets")
			}
		}
	})
}

var (
	skewOnce sync.Once
	skewLogs *Collection
	skewSink NodeID
	skewEnd  int64
)

// skewedBench builds the shared hot-origin campaign once (see skewedLogs in
// sched_equiv_test.go: the busiest origin of a simulated campaign replicated
// until it dominates the packet volume).
func skewedBench(b *testing.B) (*Collection, NodeID, int64) {
	b.Helper()
	skewOnce.Do(func() {
		skewLogs, skewSink, skewEnd = skewedLogs(b, 13, 96)
	})
	if skewLogs == nil {
		b.Fatal("skewed campaign failed to build")
	}
	return skewLogs, skewSink, skewEnd
}

// BenchmarkAnalyzeSkewed is the scheduler's headline number: the same
// hot-origin campaign analyzed at 8 workers under the legacy static
// origin-chunk cut (the hot origin is one indivisible chunk — its owner
// serializes the tail) and under the work-stealing scheduler (idle workers
// split the hot origin mid-chunk). The steal case must beat static by a wide
// margin here while every equivalence suite pins their outputs equal.
func BenchmarkAnalyzeSkewed(b *testing.B) {
	logs, sink, end := skewedBench(b)
	events := logs.TotalEvents()
	run := func(b *testing.B, extra ...AnalyzerOption) {
		opts := append([]AnalyzerOption{WithParallelism(8)}, extra...)
		an, err := NewAnalyzer(AnalyzerOptions{Sink: sink, End: end}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := an.Analyze(logs)
			if len(out.Result.Flows) == 0 {
				b.Fatal("no flows")
			}
		}
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("static-8", func(b *testing.B) {
		run(b, WithEngineOptions(EngineOptions{StaticSharding: true}))
	})
	b.Run("steal-8", func(b *testing.B) {
		run(b)
	})
}

// BenchmarkSessionIngest measures the resident ingest path end to end in the
// steady-state shape of cmd/refill-serve: per-node fragments appended in
// rounds, a watermark advance finalizing each retired window, and a final
// drain. Windows run serially (Parallelism 1) so allocs/op is deterministic
// and benchguard can pin it; fragment slicing happens outside the timer.
func BenchmarkSessionIngest(b *testing.B) {
	c := benchCampaign(b)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	horizon := maxPacketSpread(logs)
	an, err := NewAnalyzer(AnalyzerOptions{},
		WithSink(sink), WithWindow(0, end), WithParallelism(1))
	if err != nil {
		b.Fatal(err)
	}
	nodes := logs.Nodes()
	const rounds = 8
	type frag struct {
		node NodeID
		evs  []Event
	}
	var schedule [rounds][]frag
	for _, n := range nodes {
		evs := logs.Log(n).Events()
		for r := 0; r < rounds; r++ {
			lo, hi := len(evs)*r/rounds, len(evs)*(r+1)/rounds
			schedule[r] = append(schedule[r], frag{node: n, evs: evs[lo:hi]})
		}
	}
	events := logs.TotalEvents()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := an.NewSession(SessionConfig{Horizon: horizon})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range nodes {
			sess.Register(n)
		}
		for r := 0; r < rounds; r++ {
			for _, f := range schedule[r] {
				if err := sess.Append(f.node, f.evs); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sess.Advance(end); err != nil {
				b.Fatal(err)
			}
		}
		_, rep := sess.Drain()
		if rep.Total() == 0 {
			b.Fatal("no packets")
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
