package refill

// Equivalence suite for the arena-backed flow output (the output-side twin
// of soa_equiv_test.go): flows committed into shared flow.Arena chunks must
// be indistinguishable from flows built as standalone slices — deeply equal
// structs, identical reports, byte-identical textual serializations — across
// the serial, parallel and streaming analysis paths.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/flow"
)

// sliceBackedDetour reconstructs every view through AnalyzePacket, whose
// flows are standalone exact-sized heap slices — the pre-arena storage
// layout. Any state the arena commit failed to carry would diverge here.
func sliceBackedDetour(eng *engine.Engine, logs *event.Collection) []*flow.Flow {
	views, _ := event.Partition(logs)
	flows := make([]*flow.Flow, len(views))
	for i, v := range views {
		flows[i] = eng.AnalyzePacket(v)
	}
	return flows
}

// serializeFlows renders flows into one deterministic byte blob: the paper
// notation, the custody path, the visit summaries and the anomalies of every
// flow. Both storage layouts must produce the same bytes.
func serializeFlows(flows []*flow.Flow) string {
	var b strings.Builder
	for _, f := range flows {
		fmt.Fprintf(&b, "%v|%s|%v|%d/%d\n", f.Packet, f.String(), f.Path(), f.InferredCount(), f.LoggedCount())
		for _, v := range f.Visits {
			fmt.Fprintf(&b, "  v %+v\n", v)
		}
		for _, a := range f.Anomalies {
			fmt.Fprintf(&b, "  a %v %s\n", a.Event, a.Reason)
		}
	}
	return b.String()
}

func TestFlowArenaEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		camp, err := RunCampaign(TinyCampaign(seed))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(EngineOptions{Sink: camp.Sink})
		if err != nil {
			t.Fatal(err)
		}
		arena := eng.Analyze(camp.Logs).Flows
		detour := sliceBackedDetour(eng, camp.Logs)
		if len(arena) == 0 {
			t.Fatalf("seed %d: no flows", seed)
		}
		if !reflect.DeepEqual(arena, detour) {
			t.Errorf("seed %d: arena-backed flows differ from the slice-backed detour", seed)
		}
		if a, b := serializeFlows(arena), serializeFlows(detour); a != b {
			t.Errorf("seed %d: serializations differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestFlowArenaReportEquivalence runs the whole facade pipeline in every
// parallelism mode and demands identical flows, identical rendered reports
// and identical serialized flow text — the acceptance contract that arena
// commit plus origin-sharded distribution changes nothing observable.
func TestFlowArenaReportEquivalence(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(8))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)})
	if err != nil {
		t.Fatal(err)
	}
	serial := base.Analyze(camp.Logs)
	wantFlows := serializeFlows(serial.Result.Flows)
	wantReport := RenderBreakdown(serial.Report)
	for _, workers := range []int{1, 2, 4, -1} {
		an, err := NewAnalyzer(AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)},
			WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		par := an.Analyze(camp.Logs)
		if !reflect.DeepEqual(serial.Result, par.Result) {
			t.Errorf("workers=%d: parallel result diverged from serial", workers)
		}
		if got := serializeFlows(par.Result.Flows); got != wantFlows {
			t.Errorf("workers=%d: parallel flow serialization diverged", workers)
		}
		str := an.AnalyzeStream(camp.Logs)
		if !reflect.DeepEqual(serial.Result, str.Result) {
			t.Errorf("workers=%d: stream result diverged from serial", workers)
		}
		if got := serializeFlows(str.Result.Flows); got != wantFlows {
			t.Errorf("workers=%d: stream flow serialization diverged", workers)
		}
		if got := RenderBreakdown(str.Report); got != wantReport {
			t.Errorf("workers=%d: stream report diverged:\n%s\nvs\n%s", workers, got, wantReport)
		}
	}
}

// TestFlowArenaInferredCountConsistency cross-checks the O(1) counters on
// real campaign output against a rescan of Items.
func TestFlowArenaInferredCountConsistency(t *testing.T) {
	camp, err := RunCampaign(TinyCampaign(9))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineOptions{Sink: camp.Sink})
	if err != nil {
		t.Fatal(err)
	}
	sawInferred := false
	for _, f := range eng.Analyze(camp.Logs).Flows {
		n := 0
		for _, it := range f.Items {
			if it.Inferred {
				n++
			}
		}
		if f.InferredCount() != n {
			t.Fatalf("packet %v: InferredCount = %d, rescan = %d", f.Packet, f.InferredCount(), n)
		}
		if f.LoggedCount() != len(f.Items)-n {
			t.Fatalf("packet %v: LoggedCount = %d, want %d", f.Packet, f.LoggedCount(), len(f.Items)-n)
		}
		sawInferred = sawInferred || n > 0
	}
	if !sawInferred {
		t.Error("campaign produced no inferred items; the check is vacuous")
	}
}
