package refill

// Equivalence suite for the compiled threaded-code kernels: the default
// kernel-walk engine must be indistinguishable from the interpreted reference
// walk (WithInterpretedEngine) on real campaign logs — deeply equal results,
// byte-identical flow serializations and rendered reports — across the
// serial, parallel, streaming and two-pass (separate diagnosis) pipelines.

import (
	"reflect"
	"testing"
)

func TestKernelEngineEquivalence(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		camp, err := RunCampaign(TinyCampaign(seed))
		if err != nil {
			t.Fatal(err)
		}
		opts := AnalyzerOptions{Sink: camp.Sink, End: int64(camp.Duration)}
		interp, err := NewAnalyzer(opts, WithInterpretedEngine())
		if err != nil {
			t.Fatal(err)
		}
		want := interp.Analyze(camp.Logs)
		if len(want.Result.Flows) == 0 {
			t.Fatalf("seed %d: no flows", seed)
		}
		wantFlows := serializeFlows(want.Result.Flows)
		wantReport := RenderBreakdown(want.Report)
		modes := []struct {
			name   string
			extra  []AnalyzerOption
			stream bool
		}{
			{"serial", nil, false},
			{"parallel-2", []AnalyzerOption{WithParallelism(2)}, false},
			{"parallel-all", []AnalyzerOption{WithParallelism(-1)}, false},
			{"stream", []AnalyzerOption{WithParallelism(2)}, true},
			{"two-pass", []AnalyzerOption{WithSeparateDiagnosis()}, false},
		}
		for _, m := range modes {
			an, err := NewAnalyzer(opts, m.extra...)
			if err != nil {
				t.Fatal(err)
			}
			var out *Output
			if m.stream {
				out = an.AnalyzeStream(camp.Logs)
			} else {
				out = an.Analyze(camp.Logs)
			}
			if !reflect.DeepEqual(want.Result, out.Result) {
				t.Errorf("seed %d %s: kernel result diverged from the interpreted walk", seed, m.name)
			}
			if got := serializeFlows(out.Result.Flows); got != wantFlows {
				t.Errorf("seed %d %s: kernel flow serialization diverged", seed, m.name)
			}
			if got := RenderBreakdown(out.Report); got != wantReport {
				t.Errorf("seed %d %s: kernel report diverged:\n%s\nvs\n%s", seed, m.name, got, wantReport)
			}
		}
	}
}
