package refill

// Equivalence harness for the resident ingest session: a session fed a
// campaign's per-node logs as fragments — whatever the fragment interleave
// and watermark schedule — must, once drained, produce a Result and Report
// byte-identical to batch Analyze over the same collection. Three named
// schedules (in-order rounds, seeded random interleave, adversarial
// single-digit fragments with an advance after every append) pin the
// property deterministically; FuzzSessionEquivalence searches schedule space
// beyond them. A soak test pins the memory story: retained pending rows
// stay bounded by the in-flight window across many advances, rather than
// accumulating with total ingest.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// maxPacketSpread computes the campaign's maximum within-packet timestamp
// spread — the Horizon a deployment would derive from its clock-skew and
// packet-lifetime bounds, here measured exactly from the logs.
func maxPacketSpread(logs *Collection) int64 {
	type span struct{ min, max int64 }
	spans := make(map[PacketID]span)
	for _, n := range logs.Nodes() {
		for _, e := range logs.Log(n).Events() {
			if !e.Type.PacketScoped() {
				continue
			}
			s, ok := spans[e.Packet]
			if !ok {
				s = span{min: e.Time, max: e.Time}
			}
			if e.Time < s.min {
				s.min = e.Time
			}
			if e.Time > s.max {
				s.max = e.Time
			}
			spans[e.Packet] = s
		}
	}
	horizon := int64(0)
	//refill:allow maprange — max reduction; order-independent
	for _, s := range spans {
		if d := s.max - s.min; d > horizon {
			horizon = d
		}
	}
	return horizon
}

// fragmentLogs splits each node's log into per-node fragment queues of at
// most chunk events, preserving log order within each node.
func fragmentLogs(logs *Collection, chunk int) map[NodeID][][]Event {
	out := make(map[NodeID][][]Event)
	for _, n := range logs.Nodes() {
		evs := logs.Log(n).Events()
		for lo := 0; lo < len(evs); lo += chunk {
			hi := lo + chunk
			if hi > len(evs) {
				hi = len(evs)
			}
			out[n] = append(out[n], evs[lo:hi])
		}
	}
	return out
}

// sessionFor opens a session on an analyzer configured like the batch
// reference, with every campaign node registered so aggressive watermark
// advances cannot finalize packets whose rows are still unseen.
func sessionFor(t *testing.T, an *Analyzer, logs *Collection, horizon int64) *Session {
	t.Helper()
	sess, err := an.NewSession(SessionConfig{Horizon: horizon, RetainFlows: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range logs.Nodes() {
		sess.Register(n)
	}
	return sess
}

func TestSessionEquivalence(t *testing.T) {
	c := equivCampaign(t)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	dayLen := int64(sim.Day)
	days := int((end + dayLen - 1) / dayLen)
	horizon := maxPacketSpread(logs)

	an, err := NewAnalyzer(AnalyzerOptions{},
		WithSink(sink), WithWindow(0, end), WithDailyBins(dayLen, days))
	if err != nil {
		t.Fatal(err)
	}
	want := an.Analyze(logs)
	if want.Report.Total() == 0 || len(want.Report.Outages) == 0 {
		t.Fatal("degenerate campaign: sessions need losses and outages to prove anything")
	}

	check := func(t *testing.T, sess *Session) {
		t.Helper()
		res, rep := sess.Drain()
		if !reflect.DeepEqual(want.Result.Operational, res.Operational) {
			t.Error("Operational diverged from batch Analyze")
		}
		if !reflect.DeepEqual(want.Result.Flows, res.Flows) {
			t.Error("Flows diverged from batch Analyze")
		}
		checkSameReport(t, want.Report, rep, dayLen, days)
	}

	t.Run("in-order", func(t *testing.T) {
		// Each node's log arrives in a few in-order rounds; the watermark
		// chases the campaign end after every round.
		sess := sessionFor(t, an, logs, horizon)
		const rounds = 5
		nodes := logs.Nodes()
		for r := 0; r < rounds; r++ {
			for _, n := range nodes {
				evs := logs.Log(n).Events()
				lo, hi := len(evs)*r/rounds, len(evs)*(r+1)/rounds
				if err := sess.Append(n, evs[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sess.Advance(end); err != nil {
				t.Fatal(err)
			}
		}
		if sess.Stats().FinalizedPackets == 0 {
			t.Error("no packet finalized before drain; schedule never exercised retirement")
		}
		check(t, sess)
	})

	t.Run("shuffled", func(t *testing.T) {
		// Fragments drain from per-node queues in a seeded random global
		// interleave (per-node order intact — that is the log contract),
		// with random watermark advances mixed in.
		sess := sessionFor(t, an, logs, horizon)
		frags := fragmentLogs(logs, 2048)
		var order []NodeID
		//refill:allow maprange — queue keys; the shuffle below randomizes deliberately
		for n, q := range frags {
			for range q {
				order = append(order, n)
			}
		}
		rng := rand.New(rand.NewSource(42))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		next := make(map[NodeID]int)
		for i, n := range order {
			if err := sess.Append(n, frags[n][next[n]]); err != nil {
				t.Fatal(err)
			}
			next[n]++
			if i%7 == 0 {
				if _, err := sess.Advance(rng.Int63n(2 * end)); err != nil {
					t.Fatal(err)
				}
			}
		}
		check(t, sess)
	})

	t.Run("adversarial", func(t *testing.T) {
		// Tiny fragments, nodes in descending order, and a maximal advance
		// after every single append — the watermark machinery gets no slack
		// anywhere. Snapshots are interleaved to prove reads never disturb
		// the accumulating state.
		sess := sessionFor(t, an, logs, horizon)
		frags := fragmentLogs(logs, 601)
		nodes := logs.Nodes()
		for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		}
		for round, appended := 0, true; appended; round++ {
			appended = false
			for _, n := range nodes {
				if round >= len(frags[n]) {
					continue
				}
				appended = true
				if err := sess.Append(n, frags[n][round]); err != nil {
					t.Fatal(err)
				}
				if _, err := sess.Advance(end + 1); err != nil {
					t.Fatal(err)
				}
			}
			if rep := sess.Snapshot(); rep.Total() != sess.Stats().FinalizedPackets {
				t.Fatal("snapshot total disagrees with finalized count")
			}
		}
		check(t, sess)
	})
}

// TestSessionSnapshotConsistency pins the live view: a snapshot taken
// mid-campaign covers exactly the finalized packets, agrees with its own
// aggregate reads, and draining afterwards still matches batch.
func TestSessionSnapshotConsistency(t *testing.T) {
	c := equivCampaign(t)
	logs, sink, end := c.Res.Logs, c.Res.Sink, int64(c.Res.Duration)
	horizon := maxPacketSpread(logs)
	an, err := NewAnalyzer(AnalyzerOptions{}, WithSink(sink), WithWindow(0, end))
	if err != nil {
		t.Fatal(err)
	}
	want := an.Analyze(logs)
	sess := sessionFor(t, an, logs, horizon)
	nodes := logs.Nodes()
	const rounds = 4
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			evs := logs.Log(n).Events()
			lo, hi := len(evs)*r/rounds, len(evs)*(r+1)/rounds
			if err := sess.Append(n, evs[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sess.Advance(end); err != nil {
			t.Fatal(err)
		}
		rep := sess.Snapshot()
		if rep.Total() != sess.Stats().FinalizedPackets {
			t.Fatalf("round %d: snapshot total %d != finalized %d", r, rep.Total(), sess.Stats().FinalizedPackets)
		}
		losses := 0
		//refill:allow maprange — sum reduction; order-independent
		for _, n := range rep.Breakdown() {
			losses += n
		}
		if losses != rep.Total() {
			t.Fatalf("round %d: breakdown sums to %d of %d outcomes", r, losses, rep.Total())
		}
	}
	_, rep := sess.Drain()
	if !reflect.DeepEqual(want.Report.Outcomes, rep.Outcomes) {
		t.Error("drained outcomes diverged after interleaved snapshots")
	}
}

// TestSessionBoundedRetention is the soak test: a session fed an unbounded
// packet stream, advanced once per window, must hold pending rows bounded by
// the in-flight window population — not by total ingest.
func TestSessionBoundedRetention(t *testing.T) {
	an, err := NewAnalyzer(AnalyzerOptions{}, WithSink(1), WithWindow(0, 1<<40))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := an.NewSession(SessionConfig{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	const (
		windows      = 16
		perWindow    = 25
		windowLength = int64(1000)
	)
	origins := []NodeID{2, 3, 4}
	maxPending, totalRows := 0, 0
	for w := 0; w < windows; w++ {
		base := int64(w) * windowLength
		for p := 0; p < perWindow; p++ {
			o := origins[p%len(origins)]
			pkt := PacketID{Origin: o, Seq: uint32(w*perWindow + p)}
			tick := base + int64(p)*20
			rows := []Event{
				{Node: o, Type: Gen, Sender: o, Packet: pkt, Time: tick},
				{Node: o, Type: Trans, Sender: o, Receiver: 1, Packet: pkt, Time: tick + 2},
				{Node: 1, Type: Recv, Sender: o, Receiver: 1, Packet: pkt, Time: tick + 3},
				{Node: o, Type: AckRecvd, Sender: o, Receiver: 1, Packet: pkt, Time: tick + 4},
				{Node: Server, Type: ServerRecv, Sender: 1, Receiver: Server, Packet: pkt, Time: tick + 5},
			}
			for _, e := range rows {
				if err := sess.Append(e.Node, []Event{e}); err != nil {
					t.Fatal(err)
				}
				totalRows++
			}
		}
		if _, err := sess.Advance(base + windowLength); err != nil {
			t.Fatal(err)
		}
		if p := sess.Stats().PendingRows; p > maxPending {
			maxPending = p
		}
	}
	st := sess.Stats()
	if st.Epoch < 10 {
		t.Fatalf("only %d advances moved the session; the soak needs >= 10 windows", st.Epoch)
	}
	// Everything except at most the last window's tail (held back by the
	// horizon) must have been evicted at every step: the high-water mark
	// may cover about two windows of rows, never the whole stream.
	bound := 3 * perWindow * 5
	if maxPending > bound {
		t.Errorf("pending rows peaked at %d; bound for two in-flight windows is %d (total ingested %d)",
			maxPending, bound, totalRows)
	}
	if maxPending >= totalRows {
		t.Errorf("retention never evicted: peak %d of %d total rows", maxPending, totalRows)
	}
	_, rep := sess.Drain()
	if rep.Total() != windows*perWindow {
		t.Errorf("drained %d packets, want %d", rep.Total(), windows*perWindow)
	}
	if rep.LossCount() != 0 {
		t.Errorf("lossless soak stream reported %d losses", rep.LossCount())
	}
}

// FuzzSessionEquivalence drives a session with a fuzz-chosen fragment and
// watermark schedule over a tiny campaign and requires the drained report to
// match batch Analyze exactly. Bytes alternate between "which node appends
// its next fragment" and "advance the watermark to a byte-scaled time".
func FuzzSessionEquivalence(f *testing.F) {
	camp, err := RunCampaign(TinyCampaign(3))
	if err != nil {
		f.Fatal(err)
	}
	logs, sink, end := camp.Logs, camp.Sink, int64(camp.Duration)
	horizon := maxPacketSpread(logs)
	an, err := NewAnalyzer(AnalyzerOptions{}, WithSink(sink), WithWindow(0, end))
	if err != nil {
		f.Fatal(err)
	}
	want := an.Analyze(logs)
	nodes := logs.Nodes()

	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x80, 0x40})
	f.Add([]byte("watermarks"))
	f.Fuzz(func(t *testing.T, program []byte) {
		sess, err := an.NewSession(SessionConfig{Horizon: horizon, RetainFlows: false})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nodes {
			sess.Register(n)
		}
		frags := fragmentLogs(logs, 257)
		next := make(map[NodeID]int)
		for i, b := range program {
			if i%2 == 1 {
				// Odd bytes advance: scale the byte across [0, 2*end) so
				// overshoot (clamping) is exercised too.
				if _, err := sess.Advance(int64(b) * 2 * end / 256); err != nil {
					t.Fatal(err)
				}
				continue
			}
			n := nodes[int(b)%len(nodes)]
			if next[n] < len(frags[n]) {
				if err := sess.Append(n, frags[n][next[n]]); err != nil {
					t.Fatal(err)
				}
				next[n]++
			}
		}
		// Deliver every remaining fragment, then drain.
		for _, n := range nodes {
			for ; next[n] < len(frags[n]); next[n]++ {
				if err := sess.Append(n, frags[n][next[n]]); err != nil {
					t.Fatal(err)
				}
			}
		}
		_, rep := sess.Drain()
		if !reflect.DeepEqual(want.Report.Outcomes, rep.Outcomes) {
			t.Errorf("outcomes diverged under schedule %x", program)
		}
		if !reflect.DeepEqual(want.Report.Breakdown(), rep.Breakdown()) {
			t.Errorf("breakdown diverged under schedule %x:\n got %v\nwant %v",
				program, rep.Breakdown(), want.Report.Breakdown())
		}
	})
}
